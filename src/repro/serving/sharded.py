"""Sharded ingest with wire-level fan-in (the serving tentpole).

:class:`ShardedMonitoringSystem` promotes the single-process
:class:`~repro.streams.MonitoringSystem` loop into a ``shards=K``
engine while keeping its :class:`~repro.streams.SystemReport`
**bit-identical** to the serial run for the same seed — faults
included.  Three mechanisms, none of which touches the fault RNG:

1. **Shard prefetch.**  Before the window loop starts, every
   ``(monitor, window)`` histogram is built by shard worker processes:
   UIDs are hash-split across Monitors exactly as the serial run splits
   them (:meth:`~repro.streams.tuples.Trace.split` is seeded), the
   window buffers are placed in :mod:`multiprocessing.shared_memory`
   segments (workers read zero-copy ``int64``/``float64`` views), and
   each worker runs the batched
   :meth:`~repro.streams.Monitor.process_windows` kernel — which is
   property-tested bit-identical to the serial per-window build.
   Histogram *content* is independent of fault outcomes, so prefetch
   needs no fault model; the base loop then draws crash and delivery
   decisions in the exact serial order
   (:meth:`~repro.streams.faults.FaultModel.plan_decisions`) and simply
   consumes prefetched messages in phase 2.
2. **Wire-level fan-in.**  Each shard ships v2-encoded payloads; the
   :class:`FanInControlCenter` combines one window's shard histograms
   with the shared k-way merge arithmetic
   (:func:`repro.core.wire.merge_views`) and decodes **exactly once at
   the tenant boundary** — no per-payload re-parse, no re-encode of the
   merged buffer.  The estimates are bit-identical to the serial
   query-from-wire path (same concatenate/unique/bincount accumulation
   order, and v2 encode/decode is a lossless inverse).
3. **Batched ground truth.**  The exact per-window grouped aggregation
   is computed for the whole run in one flattened bincount
   (:func:`~repro.streams.query.exact_group_counts_batched`) and
   answered from the matrix.

If a prefetched message is missing or carries a stale function version
(e.g. an adaptive subclass rebuilt mid-run), phase 2 falls back to the
inline serial build for that job — correctness never depends on the
prefetch; ``prefetch_misses`` counts the fallbacks.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.compiled import CompiledEstimator
from ..core.partition import Histogram
from ..core.wire import merge_views
from ..obs import (
    NULL_JOURNAL,
    NULL_TRACER,
    NullRegistry,
    get_journal,
    get_registry,
    use_journal,
    use_registry,
    use_tracer,
)
from ..streams.control_center import ControlCenter
from ..streams.kernels import stream_kernel_mode, use_stream_kernel_mode
from ..streams.monitor import HistogramMessage, Monitor
from ..streams.query import exact_group_counts_batched
from ..streams.system import MonitoringSystem, SystemReport, _UNSET
from ..streams.tuples import Trace

__all__ = ["FanInControlCenter", "ShardedMonitoringSystem"]


class FanInControlCenter(ControlCenter):
    """Control center that merges shard payloads without re-encoding.

    The serial fast path demonstrates query-from-wire end to end: it
    merges payloads with :func:`~repro.core.wire.merge_wire` (parse
    each, re-encode the merged buffer) and estimates off a
    :class:`~repro.core.wire.WireHistogram` re-parse.  At serving
    fan-in that wire round-trip is pure overhead — the shard messages'
    histograms *are* the decoded payloads (the v2 codec is a lossless
    inverse, fuzz-tested in ``tests/test_wire.py``) — so this decoder
    runs the same k-way merge arithmetic directly on the bucket arrays
    and estimates through the compiled gather.  Estimates and merged
    histograms are bit-identical to the serial path; only the
    parse×k + encode + parse glue is gone.
    """

    def _merge_and_estimate(self, usable):
        if (
            not usable
            or stream_kernel_mode() != "fast"
            or any(m.payload is None for m in usable)
        ):
            # Empty, naive-mode, or v1 messages: the base behaviour is
            # already the lean one (or is the documented reference).
            return super()._merge_and_estimate(usable)
        nodes, sums, unmatched, total = merge_views(
            [m.histogram for m in usable]
        )
        merged = Histogram.from_arrays(
            nodes, sums, unmatched=unmatched, total=total
        )
        estimator = CompiledEstimator.for_pair(self.table, self.function)
        return merged, estimator.estimate(merged)


def _shard_worker(task):
    """Build all of one shard's (monitor, window) histograms.

    Runs in a worker process: observability is nulled (the parent owns
    metrics and the journal; worker Monitor objects are throwaway) and
    the parent's stream kernel mode is pinned explicitly so a ``spawn``
    start method cannot drift from the serial build. Returns pickled
    :class:`~repro.streams.monitor.HistogramMessage` lists — histogram
    arrays are fresh bincount outputs, never views into the shared
    segments.
    """
    (
        shard_id,
        shm_name,
        values_shm_name,
        total_tuples,
        mode,
        function,
        version,
        monitor_jobs,
    ) = task
    shm = shared_memory.SharedMemory(name=shm_name)
    vshm = (
        shared_memory.SharedMemory(name=values_shm_name)
        if values_shm_name is not None
        else None
    )

    def build_all():
        # Scoped so every view into the shared segments is dropped when
        # this returns (SharedMemory refuses to close while exported
        # buffers are alive).  Histogram arrays are bincount outputs —
        # fresh memory, never views.
        uid_buf = np.ndarray((total_tuples,), dtype=np.int64, buffer=shm.buf)
        val_buf = (
            np.ndarray((total_tuples,), dtype=np.float64, buffer=vshm.buf)
            if vshm is not None
            else None
        )
        results = []
        for name, wins in monitor_jobs:
            monitor = Monitor(name, wire_format="v2")
            monitor.install_function(function, version)
            indices = [w for (w, _off, _n, _hv) in wins]
            arrays = [uid_buf[off:off + n] for (_w, off, n, _hv) in wins]
            if val_buf is not None and all(hv for (*_rest, hv) in wins):
                vals = [val_buf[off:off + n] for (_w, off, n, _hv) in wins]
                messages = monitor.process_windows(indices, arrays, vals)
            elif val_buf is not None:
                # Mixed weighted/unweighted windows (cannot happen
                # from Trace.split, but keep the slow exact path).
                messages = [
                    monitor.process_window(
                        w,
                        uid_buf[off:off + n],
                        values=val_buf[off:off + n] if hv else None,
                    )
                    for (w, off, n, hv) in wins
                ]
            else:
                messages = monitor.process_windows(indices, arrays)
            results.append(_pack_messages(name, messages))
        return results

    try:
        with use_registry(NullRegistry()), use_journal(NULL_JOURNAL), \
                use_tracer(NULL_TRACER), use_stream_kernel_mode(mode):
            results = build_all()
        return shard_id, results
    finally:
        shm.close()
        if vshm is not None:
            vshm.close()


def _pack_messages(name, messages):
    """Flatten one monitor's messages into a few large objects for the
    result pipe: per-message pickling of thousands of small arrays,
    payload bytes and dataclass instances costs more than the build
    itself, while a handful of concatenated arrays plus one payload
    blob crosses the pipe almost for free.  :func:`_unpack_messages`
    reconstructs messages with histogram arrays that are slices of the
    blobs — every downstream consumer (the k-way merge, accounting,
    byte charging) only reads them."""
    indices = np.asarray([m.window_index for m in messages], dtype=np.int64)
    lengths = np.asarray(
        [m.histogram.nodes.size for m in messages], dtype=np.int64
    )
    nodes = (
        np.concatenate([m.histogram.nodes for m in messages])
        if messages
        else np.empty(0, dtype=np.int64)
    )
    values = (
        np.concatenate([m.histogram.values for m in messages])
        if messages
        else np.empty(0, dtype=np.float64)
    )
    unmatched = np.asarray(
        [m.histogram.unmatched for m in messages], dtype=np.float64
    )
    totals = np.asarray(
        [m.histogram.total for m in messages], dtype=np.float64
    )
    payload_lengths = np.asarray(
        [len(m.payload) for m in messages], dtype=np.int64
    )
    payload_blob = b"".join(m.payload for m in messages)
    return (
        name, indices, lengths, nodes, values, unmatched, totals,
        payload_lengths, payload_blob,
    )


def _unpack_messages(packed, function_version):
    """Inverse of :func:`_pack_messages`."""
    (
        name, indices, lengths, nodes, values, unmatched, totals,
        payload_lengths, payload_blob,
    ) = packed
    messages = []
    bucket_off = 0
    payload_off = 0
    for i in range(int(indices.size)):
        n = int(lengths[i])
        p = int(payload_lengths[i])
        histogram = Histogram.__new__(Histogram)
        histogram.nodes = nodes[bucket_off:bucket_off + n]
        histogram.values = values[bucket_off:bucket_off + n]
        histogram.unmatched = float(unmatched[i])
        histogram.total = float(totals[i])
        histogram._dict = None
        messages.append(
            HistogramMessage(
                monitor=name,
                window_index=int(indices[i]),
                histogram=histogram,
                function_version=function_version,
                payload=payload_blob[payload_off:payload_off + p],
            )
        )
        bucket_off += n
        payload_off += p
    return name, messages


class ShardedMonitoringSystem(MonitoringSystem):
    """A :class:`~repro.streams.MonitoringSystem` whose ingest fans out
    across ``shards`` worker processes and whose decode fans shard
    payloads in at the tenant boundary.

    Reports are bit-identical (dataclass-equal) to the serial system
    for the same seeds, clean or faulty — the fault RNG, channel and
    decode bookkeeping all run unmodified in the base loop; only the
    pure per-monitor partitioning work and the merge arithmetic move.

    Parameters beyond the base class:

    shards:
        Worker processes for the prefetch pass.  Monitors are assigned
        round-robin (monitor ``i`` → shard ``i % shards``); UIDs are
        already hash-split across monitors by the seeded
        :meth:`~repro.streams.tuples.Trace.split`.
    tenant:
        Optional tenant label stamped on ``serving.shard.*`` metrics
        and ``shard.prefetch`` journal events (the
        :class:`~.engine.ServingEngine` sets it).
    """

    control_center_class = FanInControlCenter

    def __init__(
        self,
        table,
        metric,
        num_monitors: int = 4,
        shards: int = 2,
        tenant: Optional[str] = None,
        wire_format: str = "v2",
        **kwargs,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if wire_format != "v2":
            raise ValueError(
                "sharded serving fans histograms in at the wire level; "
                f"wire_format must be 'v2', got {wire_format!r}"
            )
        super().__init__(
            table, metric, num_monitors=num_monitors,
            wire_format=wire_format, **kwargs,
        )
        self.shards = shards
        self.tenant = tenant
        #: Persistent worker pool: forked lazily on the first prefetch
        #: and reused for the system's lifetime (fork + interpreter
        #: warm-up costs as much as building several windows' worth of
        #: histograms, so paying it once per run would dominate short
        #: runs).  :meth:`close` tears it down.
        self._pool: Optional[ProcessPoolExecutor] = None
        #: (monitor name, window index) -> prefetched message.
        self._prefetched: Dict[Tuple[str, int], HistogramMessage] = {}
        #: Segmentation computed by the prefetch pass, handed to the
        #: base loop so the (deterministic) split/segment work runs
        #: once per run.  Keyed by the run parameters as a guard.
        self._segmented_cache: Optional[Tuple[Tuple[int, float, int], List[list]]] = None
        #: window index -> exact per-group aggregates row.
        self._truth: Dict[int, np.ndarray] = {}
        self._truth_sizes: Dict[int, int] = {}
        self.prefetch_hits = 0
        self.prefetch_misses = 0

    # -- worker pool --------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.shards)
        return self._pool

    def close(self) -> None:
        """Shut the shard worker pool down (idempotent).  The system
        remains usable — the next run re-forks the pool."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ShardedMonitoringSystem":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    # -- prefetch -----------------------------------------------------------
    def _segment_shares(
        self, live: Trace, window_width: float, split_seed: int
    ) -> List[list]:
        """Reuse the prefetch pass's decomposition when the base loop
        asks for the same one (split and segmentation are
        deterministic, so it is exactly what the base computation would
        return); recompute otherwise."""
        cached = self._segmented_cache
        if cached is not None:
            key, segmented = cached
            if key == (id(live), float(window_width), int(split_seed)):
                return segmented
        return super()._segment_shares(live, window_width, split_seed)

    def _prefetch_truth(self, segmented: List[list], n_windows: int) -> None:
        plain: List[Tuple[int, np.ndarray]] = []
        weighted: List[Tuple[int, np.ndarray, np.ndarray]] = []
        for w in range(n_windows):
            window_uids = [s[w].uids for s in segmented if w < len(s)]
            if not window_uids:
                continue
            window_values = [
                s[w].values
                for s in segmented
                if w < len(s) and s[w].values is not None
            ]
            uids = np.concatenate(window_uids)
            # Same all-or-nothing rule as the base loop: a window where
            # some share lacks values is scored unweighted.
            if len(window_values) == len(window_uids):
                weighted.append((w, uids, np.concatenate(window_values)))
            else:
                plain.append((w, uids))
        if plain:
            rows = exact_group_counts_batched(
                self.table, [u for _w, u in plain]
            )
            for (w, u), row in zip(plain, rows):
                self._truth[w] = row
                self._truth_sizes[w] = int(u.size)
        if weighted:
            rows = exact_group_counts_batched(
                self.table,
                [u for _w, u, _v in weighted],
                [v for _w, _u, v in weighted],
            )
            for (w, u, _v), row in zip(weighted, rows):
                self._truth[w] = row
                self._truth_sizes[w] = int(u.size)

    def _prefetch(
        self, live: Trace, window_width: float, split_seed: int
    ) -> None:
        cc = self.control_center
        segmented = MonitoringSystem._segment_shares(
            self, live, window_width, split_seed
        )
        self._segmented_cache = (
            (id(live), float(window_width), int(split_seed)),
            segmented,
        )
        n_windows = max((len(s) for s in segmented), default=0)
        if n_windows == 0:
            return
        self._prefetch_truth(segmented, n_windows)
        total = sum(len(win) for segs in segmented for win in segs)
        has_values = any(
            win.values is not None for segs in segmented for win in segs
        )
        # One shared segment per stream column; workers map zero-copy
        # typed views over it and slice windows by (offset, length).
        shm = shared_memory.SharedMemory(create=True, size=max(8, total * 8))
        vshm = (
            shared_memory.SharedMemory(create=True, size=max(8, total * 8))
            if has_values
            else None
        )
        try:
            uid_buf = np.ndarray((total,), dtype=np.int64, buffer=shm.buf)
            val_buf = (
                np.ndarray((total,), dtype=np.float64, buffer=vshm.buf)
                if vshm is not None
                else None
            )
            shard_jobs: List[list] = [[] for _ in range(self.shards)]
            offset = 0
            for i, (monitor, segs) in enumerate(
                zip(self.monitors, segmented)
            ):
                wins = []
                for win in segs:
                    n = len(win)
                    uid_buf[offset:offset + n] = win.uids
                    win_has_values = win.values is not None
                    if val_buf is not None and win_has_values:
                        val_buf[offset:offset + n] = win.values
                    wins.append((win.index, offset, n, win_has_values))
                    offset += n
                shard_jobs[i % self.shards].append((monitor.name, wins))
            tasks = [
                (
                    shard,
                    shm.name,
                    vshm.name if vshm is not None else None,
                    total,
                    stream_kernel_mode(),
                    cc.function,
                    cc.function_version,
                    jobs,
                )
                for shard, jobs in enumerate(shard_jobs)
                if jobs
            ]
            shard_bytes = [0] * self.shards
            pool = self._ensure_pool()
            for shard, results in pool.map(_shard_worker, tasks):
                for packed in results:
                    name, messages = _unpack_messages(
                        packed, cc.function_version
                    )
                    for msg in messages:
                        self._prefetched[(name, msg.window_index)] = msg
                        shard_bytes[shard] += len(msg.payload)
        finally:
            del uid_buf, val_buf
            shm.close()
            shm.unlink()
            if vshm is not None:
                vshm.close()
                vshm.unlink()
        registry = get_registry()
        journal = get_journal()
        labels = {"tenant": self.tenant} if self.tenant else {}
        for shard, jobs in enumerate(shard_jobs):
            if not jobs:
                continue
            windows = sum(len(wins) for _name, wins in jobs)
            tuples = sum(n for _name, wins in jobs for (_w, _o, n, _hv) in wins)
            if registry.enabled:
                registry.counter(
                    "serving.shard.windows", shard=str(shard), **labels
                ).inc(windows)
                registry.counter(
                    "serving.shard.tuples", shard=str(shard), **labels
                ).inc(tuples)
                registry.counter(
                    "serving.shard.payload_bytes", shard=str(shard), **labels
                ).inc(shard_bytes[shard])
            if journal.enabled:
                journal.emit(
                    "shard.prefetch",
                    shard=shard,
                    tenant=self.tenant or "",
                    monitors=[name for name, _wins in jobs],
                    windows=windows,
                    tuples=tuples,
                    payload_bytes=shard_bytes[shard],
                )

    # -- base-loop hooks ----------------------------------------------------
    def _partition_jobs(self, pool, jobs):
        prefetched = self._prefetched
        if not prefetched:
            return super()._partition_jobs(pool, jobs)
        messages = []
        for monitor, window, _plan in jobs:
            msg = prefetched.get((monitor.name, window.index))
            if (
                msg is None
                or msg.function_version != monitor.function_version
            ):
                # Not prefetched (or built against a superseded
                # function): fall back to the inline serial build.
                self.prefetch_misses += 1
                messages.append(
                    monitor.process_window(
                        window.index, window.uids, values=window.values
                    )
                )
                continue
            self.prefetch_hits += 1
            # The worker's throwaway Monitor absorbed the per-window
            # accounting; replay it on the real one so lifetime stats
            # and monitor.* metrics match the serial run.
            monitor._account(1, len(window), (msg.histogram,))
            messages.append(msg)
        return messages

    def _ground_truth(self, window, uids, values):
        row = self._truth.get(window)
        if row is not None and self._truth_sizes.get(window) == int(uids.size):
            return row
        return super()._ground_truth(window, uids, values)

    # -- entry point --------------------------------------------------------
    def run(
        self,
        live: Trace,
        window_width: float,
        split_seed: int = 0,
        faults: object = _UNSET,
    ) -> "SystemReport":
        self._prefetched = {}
        self._truth = {}
        self._truth_sizes = {}
        self._segmented_cache = None
        if self.control_center.function is not None:
            # Untrained systems skip straight to the base loop's
            # "call train() before run()" error.
            self._prefetch(live, window_width, split_seed)
        try:
            return super().run(live, window_width, split_seed, faults)
        finally:
            # Per-run caches can pin the whole live trace; drop them.
            self._segmented_cache = None
            self._truth = {}
            self._truth_sizes = {}
