"""Ablation A6: the exact k-holes algorithm vs. the heuristics
(paper Sections 3.2.5-3.2.7).

At small scale the k-holes DP with unrestricted k is an exact
longest-prefix-match optimizer, giving a ground truth against which to
measure (a) how much restricting holes to small k costs, and (b) how
close the greedy and quantized heuristics get — the approximation story
behind the paper's decision to use heuristics at scale.
"""

import numpy as np

from repro import GroupTable, PrunedHierarchy, UIDDomain, get_metric
from repro.algorithms import (
    build_lpm_greedy,
    build_lpm_kholes,
    build_lpm_quantized,
)

from workloads import format_table, save_series

BUDGET = 5


def _small_workload():
    rng = np.random.default_rng(71)
    dom = UIDDomain(4)
    table = GroupTable(dom, [dom.node(4, p) for p in range(16)])
    counts = rng.integers(0, 60, 16).astype(float)
    counts[rng.random(16) < 0.5] = 0
    return table, counts, PrunedHierarchy(table, counts)


def test_kholes_vs_heuristics(benchmark):
    _table, _counts, hierarchy = _small_workload()
    metric = get_metric("rms")

    results = {}
    for k in (1, 2, BUDGET):
        res = build_lpm_kholes(hierarchy, metric, BUDGET, k=k)
        results[f"kholes_k{k}"] = res.error_at(BUDGET)
    results["greedy"] = build_lpm_greedy(
        hierarchy, metric, BUDGET
    ).error_at(BUDGET)
    results["quantized"] = build_lpm_quantized(
        hierarchy, metric, BUDGET, theta=0.2, beam=12
    ).error_at(BUDGET)

    rows = [[name, err] for name, err in results.items()]
    save_series("a6_kholes.csv", ["method", "error"], rows)
    print(f"\nA6 exact k-holes vs heuristics (budget {BUDGET}, RMS)")
    print(format_table(["method", "error"], rows))

    optimum = results[f"kholes_k{BUDGET}"]
    # restricting k never helps; heuristics never beat the optimum
    assert results["kholes_k1"] >= results["kholes_k2"] - 1e-9
    assert results["kholes_k2"] >= optimum - 1e-9
    for name in ("greedy", "quantized"):
        assert results[name] >= optimum - 1e-9

    benchmark.pedantic(
        lambda: build_lpm_kholes(hierarchy, metric, BUDGET, k=2),
        rounds=1, iterations=1,
    )
