"""Stream kernel modes: the compiled serving fast path.

PR 2's ``REPRO_KERNELS`` switch covered *construction* (the dynamic
programs that build partitioning functions).  This module is the same
contract for the *serving* path — the per-window work a deployed
Monitor and Control Center actually repeat forever:

``"fast"`` (the default)
    Monitors partition windows through a
    :class:`~repro.core.compiled.CompiledPartitioner` (one
    ``searchsorted`` over precompiled interval boundaries plus one
    ``bincount`` per window) and the Control Center estimates through a
    :class:`~repro.core.compiled.CompiledEstimator` (flat gather/divide
    arrays instead of per-node dict walks).  Every fast path performs
    the *same* floating-point operations in the *same* order as the
    naive reference, so histograms and estimates are bit-for-bit
    identical — only interpreter overhead is eliminated.

``"naive"``
    The seed per-depth ancestor-mask loops in
    :meth:`~repro.core.partition.PartitioningFunction.build_histogram`
    and the per-node loops of
    :func:`~repro.core.estimate.reconstruct_estimates`.  Kept as the
    executable reference the fast paths are property-tested against,
    and as the baseline ``benchmarks/bench_streams.py`` measures
    speedups from.

The mode can be pinned from the environment with
``REPRO_STREAM_KERNELS=naive|fast`` (read at import time), switched
process-wide with :func:`set_stream_kernel_mode`, or scoped with
:func:`use_stream_kernel_mode`.  It is independent of the construction
mode — a run can build with ``REPRO_KERNELS=naive`` while serving with
``REPRO_STREAM_KERNELS=fast`` and vice versa.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "STREAM_KERNEL_MODES",
    "stream_kernel_mode",
    "set_stream_kernel_mode",
    "use_stream_kernel_mode",
]

STREAM_KERNEL_MODES = ("naive", "fast")


def _initial_mode() -> str:
    mode = os.environ.get("REPRO_STREAM_KERNELS", "").strip().lower()
    return mode if mode in STREAM_KERNEL_MODES else "fast"


_mode = _initial_mode()
_mode_lock = threading.Lock()


def stream_kernel_mode() -> str:
    """The currently active stream kernel mode."""
    return _mode


def set_stream_kernel_mode(mode: str) -> str:
    """Install ``mode`` process-wide; returns the previous mode."""
    global _mode
    if mode not in STREAM_KERNEL_MODES:
        known = ", ".join(STREAM_KERNEL_MODES)
        raise ValueError(
            f"unknown stream kernel mode {mode!r}; known modes: {known}"
        )
    with _mode_lock:
        previous = _mode
        _mode = mode
    return previous


@contextmanager
def use_stream_kernel_mode(mode: str) -> Iterator[str]:
    """Scope a stream kernel mode for a ``with`` block."""
    previous = set_stream_kernel_mode(mode)
    try:
        yield mode
    finally:
        set_stream_kernel_mode(previous)
