"""Optimality and consistency tests for the overlapping DP
(paper Section 3.2.3) and sparse buckets (Section 4.3)."""

import numpy as np
import pytest

from repro import (
    Bucket,
    PrunedHierarchy,
    build_nonoverlapping,
    build_overlapping,
    evaluate_function,
    get_metric,
)
from repro.algorithms import exhaustive_overlapping

from helpers import ALL_METRICS, random_instance


@pytest.mark.parametrize("seed", range(10))
@pytest.mark.parametrize("mname", ALL_METRICS)
@pytest.mark.parametrize("sparse", [False, True])
def test_matches_exhaustive_oracle(seed, mname, sparse):
    _dom, table, counts = random_instance(seed)
    metric = get_metric(mname)
    h = PrunedHierarchy(table, counts)
    budget = 1 + seed % 4
    res = build_overlapping(h, metric, budget, sparse=sparse)
    oracle, _ = exhaustive_overlapping(
        table, counts, metric, budget, sparse=sparse
    )
    assert res.error_at(budget) == pytest.approx(oracle, abs=1e-9)


@pytest.mark.parametrize("seed", range(10))
@pytest.mark.parametrize("mname", ALL_METRICS)
def test_predicted_error_is_delivered(seed, mname):
    _dom, table, counts = random_instance(seed + 50)
    metric = get_metric(mname)
    h = PrunedHierarchy(table, counts)
    budget = 1 + seed % 5
    res = build_overlapping(h, metric, budget)
    predicted = res.error_at(budget)
    if not np.isfinite(predicted):
        return
    fn = res.function_at(budget)
    measured = evaluate_function(table, counts, fn, metric)
    assert measured == pytest.approx(predicted, abs=1e-9)


@pytest.mark.parametrize("seed", range(8))
def test_never_worse_than_nonoverlapping_plus_root(seed):
    """A nonoverlapping cut plus the root is a valid overlapping
    function, so the overlapping optimum with budget b+1 is at most the
    nonoverlapping optimum with budget b."""
    _dom, table, counts = random_instance(seed, height_range=(3, 5))
    metric = get_metric("rms")
    h = PrunedHierarchy(table, counts)
    b = 4
    non = build_nonoverlapping(h, metric, b)
    over = build_overlapping(h, metric, b + 1)
    assert over.error_at(b + 1) <= non.error_at(b) + 1e-9


@pytest.mark.parametrize("seed", range(6))
def test_sparse_never_hurts(seed):
    _dom, table, counts = random_instance(seed, zero_fraction=0.6)
    metric = get_metric("avg_relative")
    h = PrunedHierarchy(table, counts)
    plain = build_overlapping(h, metric, 4, sparse=False)
    sparse = build_overlapping(h, metric, 4, sparse=True)
    assert sparse.error_at(4) <= plain.error_at(4) + 1e-9


def test_sparse_bucket_used_for_isolated_group():
    """A lone heavy group in an empty region should be captured by a
    single sparse bucket at minimal budget."""
    from repro import GroupTable, UIDDomain

    dom = UIDDomain(5)
    table = GroupTable(dom, [dom.node(5, p) for p in range(32)])
    counts = np.zeros(32)
    counts[7] = 100.0
    counts[25] = 3.0
    h = PrunedHierarchy(table, counts)
    metric = get_metric("average")
    res = build_overlapping(h, metric, 3, sparse=True)
    assert res.error_at(3) == pytest.approx(0.0, abs=1e-12)
    fn = res.function_at(3)
    assert any(b.is_sparse for b in fn.buckets)


def test_root_always_selected(small_hierarchy):
    metric = get_metric("rms")
    res = build_overlapping(small_hierarchy, metric, 5)
    fn = res.function_at(5)
    assert small_hierarchy.root.node in [b.node for b in fn.buckets]


@pytest.mark.parametrize("seed", range(6))
def test_curve_monotone(seed):
    _dom, table, counts = random_instance(seed, height_range=(3, 6))
    metric = get_metric("average")
    h = PrunedHierarchy(table, counts)
    res = build_overlapping(h, metric, 10)
    finite = res.curve[np.isfinite(res.curve)]
    assert np.all(np.diff(finite) <= 1e-12)


def test_bad_budget_rejected(small_hierarchy):
    with pytest.raises(ValueError):
        build_overlapping(small_hierarchy, get_metric("rms"), 0)


def test_budget_one_root_only(small_hierarchy):
    res = build_overlapping(small_hierarchy, get_metric("rms"), 1)
    fn = res.function_at(1)
    assert fn.num_buckets == 1
