"""Declarative per-window SLOs and the alerting engine over them.

A rule is one comparison against a per-window signal::

    coverage>=0.9            # decode coverage must stay at/above 0.9
    delivery_p99_windows<=2  # p99 end-to-end delivery age, in windows
    drift_score<=0.5         # anchored drift must stay inside budget

Signals come from the per-window accounting the run already produces —
every numeric :class:`~repro.streams.system.WindowReport` field
(``coverage``, ``drift_score``, ``spill_fraction``, ``error``,
``late_messages``, ...) plus, when lifecycle tracing is on, exact
``delivery_p50_windows`` / ``delivery_p90_windows`` /
``delivery_p99_windows`` quantiles over the window's closed deliveries.

The engine is a per-rule alert state machine evaluated once per
decoded window:

* a rule that goes out of bounds **fires** — an ``alert.fired``
  journal event, an ``slo.alerts.fired`` counter tick, and the
  ``slo.breached`` gauge (labelled by rule) set to 1;
* a firing rule that comes back in bounds **resolves** —
  ``alert.resolved`` journal event, gauge back to 0;
* every evaluation exports the observed value as the ``slo.value``
  gauge for that rule.

Alert history lands on ``SystemReport.alerts`` (and is rebuilt
bit-identically from the journal by ``repro replay``), is served live
at ``/alerts.json`` by the metrics server, and gets a pane in
``repro top``.

Like the registry/journal/tracer, the module-level *current* engine
defaults to a no-op :class:`NullSLOEngine`::

    from repro.obs import SLOEngine, parse_slo_spec, use_slo_engine

    engine = SLOEngine(parse_slo_spec("coverage>=0.9,drift_score<=0.5"))
    with use_slo_engine(engine):
        report = system.run(live, window_width=w)
    assert report.alerts == engine.alerts
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence, Union

from .journal import get_journal
from .registry import get_registry

__all__ = [
    "Alert",
    "SLORule",
    "SLOEngine",
    "NullSLOEngine",
    "NULL_SLO_ENGINE",
    "parse_slo_rule",
    "parse_slo_spec",
    "load_slo_file",
    "quantile",
    "get_slo_engine",
    "set_slo_engine",
    "use_slo_engine",
]

#: Comparison operators a rule may use, longest first so ``<=`` is not
#: split as ``<`` + ``=``.
_OPS = ("<=", ">=", "==", "<", ">")

_OP_FUNCS = {
    "<=": lambda v, t: v <= t,
    ">=": lambda v, t: v >= t,
    "==": lambda v, t: v == t,
    "<": lambda v, t: v < t,
    ">": lambda v, t: v > t,
}


@dataclass(frozen=True)
class SLORule:
    """One objective: ``signal op threshold`` must hold every window."""

    signal: str
    op: str
    threshold: float

    def __post_init__(self) -> None:
        if self.op not in _OP_FUNCS:
            raise ValueError(
                f"unknown SLO operator {self.op!r} "
                f"(accepted: {', '.join(_OPS)})"
            )
        if not self.signal or not self.signal.replace("_", "").isalnum():
            raise ValueError(f"bad SLO signal name {self.signal!r}")

    def ok(self, value: float) -> bool:
        return _OP_FUNCS[self.op](value, self.threshold)

    @property
    def spec(self) -> str:
        """The canonical one-token form, e.g. ``coverage>=0.9``."""
        threshold = self.threshold
        text = (
            str(int(threshold))
            if float(threshold).is_integer()
            else repr(threshold)
        )
        return f"{self.signal}{self.op}{text}"


def parse_slo_rule(item: str) -> SLORule:
    """Parse one rule token like ``coverage>=0.9``."""
    item = item.strip()
    for op in _OPS:
        if op in item:
            signal, _, threshold = item.partition(op)
            try:
                value = float(threshold)
            except ValueError:
                raise ValueError(
                    f"bad SLO rule {item!r}: threshold {threshold!r} "
                    f"is not a number"
                )
            return SLORule(signal.strip(), op, value)
    raise ValueError(
        f"bad SLO rule {item!r}: expected signal<op>threshold with one "
        f"of {', '.join(_OPS)}"
    )


def parse_slo_spec(spec: str) -> List[SLORule]:
    """Parse a comma-separated rule list
    (``'coverage>=0.9,delivery_p99_windows<=2'``)."""
    rules = [
        parse_slo_rule(item)
        for item in spec.split(",")
        if item.strip()
    ]
    if not rules:
        raise ValueError(f"SLO spec {spec!r} contains no rules")
    return rules


def load_slo_file(path: str) -> List[SLORule]:
    """Load rules from a JSON or TOML file.

    Accepted shapes: a bare list of rule strings, or an object/table
    with a ``rules`` list (``{"rules": ["coverage>=0.9", ...]}`` /
    ``rules = ["coverage>=0.9"]``).  TOML needs Python 3.11+
    (``tomllib``); JSON always works.
    """
    if path.endswith(".toml"):
        try:
            import tomllib
        except ImportError:  # pragma: no cover - version-dependent
            raise ValueError(
                f"cannot read {path!r}: TOML support needs Python 3.11+ "
                f"(tomllib); use a JSON rules file instead"
            )
        with open(path, "rb") as f:
            data = tomllib.load(f)
    else:
        with open(path) as f:
            data = json.load(f)
    if isinstance(data, dict):
        data = data.get("rules")
    if not isinstance(data, list) or not data:
        raise ValueError(
            f"{path}: expected a list of rule strings (or an object "
            f"with a 'rules' list)"
        )
    return [parse_slo_rule(str(item)) for item in data]


def quantile(values: Sequence[float], q: float) -> float:
    """Exact ``q``-quantile of a small sample (linear interpolation
    between order statistics; ``0.0`` for an empty sample)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = q * (len(ordered) - 1)
    lo = int(rank)
    frac = rank - lo
    if frac == 0.0:
        return float(ordered[lo])
    return float(ordered[lo] + (ordered[lo + 1] - ordered[lo]) * frac)


@dataclass(frozen=True)
class Alert:
    """One fired objective (open while ``resolved_window`` is None)."""

    rule: str
    fired_window: int
    value: float
    threshold: float
    resolved_window: Optional[int] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "fired_window": self.fired_window,
            "value": self.value,
            "threshold": self.threshold,
            "resolved_window": self.resolved_window,
        }


class SLOEngine:
    """Evaluates a rule set once per decoded window and keeps the
    fired/resolved alert history."""

    enabled = True

    def __init__(self, rules: Sequence[SLORule]) -> None:
        if not rules:
            raise ValueError("SLOEngine needs at least one rule")
        self.rules: List[SLORule] = list(rules)
        self._lock = threading.Lock()
        #: rule spec -> index into :attr:`alerts` of the open alert.
        self._active: Dict[str, int] = {}
        self.alerts: List[Alert] = []
        self.windows_evaluated = 0

    def observe(self, window: int, signals: Dict[str, float]) -> List[Alert]:
        """Evaluate every rule against one window's signals; returns
        the alerts that *fired* this window.

        A rule whose signal is absent from ``signals`` is skipped (it
        can neither fire nor resolve) — e.g. ``delivery_*`` quantiles
        with lifecycle tracing off.
        """
        journal = get_journal()
        registry = get_registry()
        fired: List[Alert] = []
        with self._lock:
            self.windows_evaluated += 1
            for rule in self.rules:
                value = signals.get(rule.signal)
                if value is None:
                    continue
                value = float(value)
                breached = not rule.ok(value)
                if registry.enabled:
                    registry.gauge("slo.value", rule=rule.spec).set(value)
                    registry.gauge("slo.breached", rule=rule.spec).set(
                        1.0 if breached else 0.0
                    )
                active = self._active.get(rule.spec)
                if breached and active is None:
                    alert = Alert(
                        rule=rule.spec,
                        fired_window=window,
                        value=value,
                        threshold=rule.threshold,
                    )
                    self._active[rule.spec] = len(self.alerts)
                    self.alerts.append(alert)
                    fired.append(alert)
                    if registry.enabled:
                        registry.counter("slo.alerts.fired").inc()
                    if journal.enabled:
                        journal.emit(
                            "alert.fired",
                            window=window, rule=rule.spec,
                            value=value, threshold=rule.threshold,
                        )
                elif not breached and active is not None:
                    self.alerts[active] = replace(
                        self.alerts[active], resolved_window=window
                    )
                    del self._active[rule.spec]
                    if registry.enabled:
                        registry.counter("slo.alerts.resolved").inc()
                    if journal.enabled:
                        journal.emit(
                            "alert.resolved",
                            window=window, rule=rule.spec, value=value,
                        )
        return fired

    @property
    def active_alerts(self) -> List[Alert]:
        with self._lock:
            return [self.alerts[i] for i in sorted(self._active.values())]

    def finish(self) -> List[Alert]:
        """The full alert history (open alerts stay unresolved)."""
        with self._lock:
            return list(self.alerts)

    def as_json(self) -> Dict[str, object]:
        """The ``/alerts.json`` document."""
        with self._lock:
            active = {self.alerts[i].rule for i in self._active.values()}
            return {
                "rules": [rule.spec for rule in self.rules],
                "windows_evaluated": self.windows_evaluated,
                "active": sorted(active),
                "alerts": [a.as_dict() for a in self.alerts],
            }


class NullSLOEngine:
    """The disabled engine: no rules, no alerts, no-ops throughout."""

    enabled = False
    rules: List[SLORule] = []
    alerts: List[Alert] = []
    active_alerts: List[Alert] = []
    windows_evaluated = 0

    def observe(self, window: int, signals: Dict[str, float]) -> List[Alert]:
        return []

    def finish(self) -> List[Alert]:
        return []

    def as_json(self) -> Dict[str, object]:
        return {
            "rules": [], "windows_evaluated": 0, "active": [], "alerts": [],
        }


#: The process-wide disabled engine (the default).
NULL_SLO_ENGINE = NullSLOEngine()

_current: Union[SLOEngine, NullSLOEngine] = NULL_SLO_ENGINE
_current_lock = threading.Lock()


def get_slo_engine() -> Union[SLOEngine, NullSLOEngine]:
    """The engine the run loop currently evaluates against."""
    return _current


def set_slo_engine(
    engine: Optional[Union[SLOEngine, NullSLOEngine]]
) -> Union[SLOEngine, NullSLOEngine]:
    """Install ``engine`` as current (``None`` disables); returns the
    previous one."""
    global _current
    with _current_lock:
        previous = _current
        _current = engine if engine is not None else NULL_SLO_ENGINE
    return previous


@contextmanager
def use_slo_engine(
    engine: Optional[Union[SLOEngine, NullSLOEngine]]
) -> Iterator[Union[SLOEngine, NullSLOEngine]]:
    """Scope ``engine`` as current for a ``with`` block."""
    previous = set_slo_engine(engine)
    try:
        yield get_slo_engine()
    finally:
        set_slo_engine(previous)
