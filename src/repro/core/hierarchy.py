"""The pruned UID hierarchy the dynamic programs run on.

The virtual hierarchy over a realistic identifier domain (e.g. ``2**32``
IPv4 addresses) is astronomically large, but the paper's algorithms
only ever examine nodes that are group nodes or their ancestors
(Section 3.2.2), and the sparse-group refinement (Section 4.3) reduces
that further to the *nonzero* groups plus bookkeeping for empty
regions.  :class:`PrunedHierarchy` materializes exactly that structure:

* a **group leaf** for every group with a nonzero count in the current
  window;
* a **branch node** for every virtual node where the induced tree
  forks, *and* for every virtual node on a compressed path that has a
  nonempty all-zero sibling subtree hanging off it;
* a **zero node** summarizing each maximal all-zero sibling subtree as
  a single ``(node, group count)`` pair.

Keeping the zero-sibling attachment points is what makes the pruned
tree *exact*: a bucket placed at any virtual node is equivalent (same
covered groups, same covered tuples, same single-identifier cost) to a
bucket at the nearest retained descendant, so optimizing over the
pruned tree optimizes over the full virtual hierarchy.  Because group
subtrees never partially overlap hierarchy subtrees, every zero-count
group falls in exactly one zero node, and empty regions contribute to
any error metric in O(1) via ``PenaltyMetric.repeated_penalty``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np

from .domain import ROOT, UIDDomain
from .groups import GroupTable

__all__ = ["PNode", "PrunedHierarchy"]


class PNode:
    """A node of the pruned hierarchy.

    Attributes
    ----------
    node:
        Virtual-hierarchy node id this pruned node is anchored at.
    kind:
        ``"group"`` (nonzero group leaf), ``"zero"`` (summary of an
        all-zero subtree) or ``"branch"``.
    left, right:
        Pruned children, ordered by identifier range (either may be
        ``None`` only for leaves).
    n_groups:
        Total number of lookup-table groups in the subtree of ``node``.
    n_nonzero:
        Number of those groups with a nonzero count in this window.
    tuples:
        Total tuple count below ``node`` in this window.
    group_index:
        For group leaves, the group's index in the
        :class:`~repro.core.groups.GroupTable`; ``None`` otherwise.
    index:
        Postorder position within the hierarchy (children precede
        parents); assigned by :class:`PrunedHierarchy`.
    """

    __slots__ = (
        "node",
        "kind",
        "left",
        "right",
        "parent",
        "n_groups",
        "n_nonzero",
        "tuples",
        "group_index",
        "index",
    )

    def __init__(self, node: int, kind: str) -> None:
        self.node = node
        self.kind = kind
        self.left: Optional[PNode] = None
        self.right: Optional[PNode] = None
        self.parent: Optional[PNode] = None
        self.n_groups = 0
        self.n_nonzero = 0
        self.tuples = 0.0
        self.group_index: Optional[int] = None
        self.index = -1

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None

    @property
    def n_zero_groups(self) -> int:
        """Groups below this node with zero count in this window."""
        return self.n_groups - self.n_nonzero

    @property
    def density(self) -> float:
        """Tuples per group below this node — the uniformity estimate a
        bucket anchored here assigns to each of its groups."""
        if self.n_groups == 0:
            return 0.0
        return self.tuples / self.n_groups

    def children(self) -> Iterator["PNode"]:
        if self.left is not None:
            yield self.left
        if self.right is not None:
            yield self.right

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PNode({self.kind} @ {self.node}, groups={self.n_groups}, "
            f"nonzero={self.n_nonzero}, tuples={self.tuples:g})"
        )


class PrunedHierarchy:
    """The induced hierarchy over nonzero groups, with zero summaries.

    Parameters
    ----------
    table:
        The lookup table defining the group subtrees.
    counts:
        Per-group counts for the window being summarized, indexed by
        group index (as produced by ``GroupTable.counts_from_uids``).
    """

    def __init__(self, table: GroupTable, counts: Sequence[float]) -> None:
        self.table = table
        self.domain = table.domain
        counts = np.asarray(counts, dtype=np.float64)
        if counts.shape != (len(table),):
            raise ValueError(
                f"expected {len(table)} group counts, got shape {counts.shape}"
            )
        if not np.all(np.isfinite(counts)):
            raise ValueError("group counts must be finite")
        if np.any(counts < 0):
            raise ValueError("group counts must be nonnegative")
        self.counts = counts
        self.root = self._build()
        self.nodes: List[PNode] = list(self._postorder(self.root))
        for i, pnode in enumerate(self.nodes):
            pnode.index = i
        self.leaves = [p for p in self.nodes if p.kind == "group"]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> PNode:
        nonzero = np.nonzero(self.counts > 0)[0]
        if nonzero.size == 0:
            # Degenerate window: nothing observed.  A single zero node
            # at the root lets every algorithm return a trivial (and
            # exact) empty histogram.
            zero = PNode(ROOT, "zero")
            zero.n_groups = len(self.table)
            return zero
        leaf_nodes = [int(self.table.nodes[g]) for g in nonzero]
        sub = self._build_range(leaf_nodes, list(map(int, nonzero)), 0, len(leaf_nodes))
        return self._wrap(sub, ROOT)

    def _build_range(
        self, leaf_nodes: List[int], group_idx: List[int], lo: int, hi: int
    ) -> PNode:
        """Build the subtree for the sorted slice ``[lo, hi)`` of nonzero
        leaves, anchored at their least common ancestor."""
        if hi - lo == 1:
            leaf = PNode(leaf_nodes[lo], "group")
            g = group_idx[lo]
            leaf.group_index = g
            leaf.n_groups = 1
            leaf.n_nonzero = 1
            leaf.tuples = float(self.counts[g])
            return leaf
        anchor = UIDDomain.lca(leaf_nodes[lo], leaf_nodes[hi - 1])
        # Split the slice at the boundary between the anchor's left and
        # right child ranges.  Groups are sorted by range start, so a
        # binary search on the midpoint suffices.
        lo_uid, hi_uid = self.domain.uid_range(anchor)
        mid_uid = (lo_uid + hi_uid) // 2
        split = lo
        while split < hi and self.table.starts[group_idx[split]] < mid_uid:
            split += 1
        if split == lo or split == hi:  # pragma: no cover - defensive
            raise AssertionError("LCA split produced an empty side")
        left_sub = self._build_range(leaf_nodes, group_idx, lo, split)
        right_sub = self._build_range(leaf_nodes, group_idx, split, hi)
        left_sub = self._wrap(left_sub, UIDDomain.left_child(anchor))
        right_sub = self._wrap(right_sub, UIDDomain.right_child(anchor))
        branch = PNode(anchor, "branch")
        self._attach(branch, left_sub, right_sub)
        return branch

    def _wrap(self, sub: PNode, top: int) -> PNode:
        """Insert branch/zero nodes for every nonempty all-zero sibling
        subtree on the virtual path from ``sub.node`` up to ``top``."""
        cur = sub
        child = sub.node
        while child != top:
            parent = UIDDomain.parent(child)
            sib = UIDDomain.sibling(child)
            z = self.table.groups_below(sib)
            if z > 0:
                zero = PNode(sib, "zero")
                zero.n_groups = z
                branch = PNode(parent, "branch")
                if sib < child:  # sibling covers the lower range
                    self._attach(branch, zero, cur)
                else:
                    self._attach(branch, cur, zero)
                cur = branch
            child = parent
        return cur

    @staticmethod
    def _attach(parent: PNode, left: PNode, right: PNode) -> None:
        parent.left = left
        parent.right = right
        left.parent = parent
        right.parent = parent
        parent.n_groups = left.n_groups + right.n_groups
        parent.n_nonzero = left.n_nonzero + right.n_nonzero
        parent.tuples = left.tuples + right.tuples

    @staticmethod
    def _postorder(root: PNode) -> Iterator[PNode]:
        stack: List[tuple] = [(root, False)]
        while stack:
            pnode, expanded = stack.pop()
            if expanded or pnode.is_leaf:
                yield pnode
            else:
                stack.append((pnode, True))
                if pnode.right is not None:
                    stack.append((pnode.right, False))
                if pnode.left is not None:
                    stack.append((pnode.left, False))

    # ------------------------------------------------------------------
    # Facts
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def num_nonzero_groups(self) -> int:
        return self.root.n_nonzero

    @property
    def total_tuples(self) -> float:
        return self.root.tuples

    def max_useful_buckets(self) -> int:
        """An upper bound on the number of buckets that can still reduce
        error: one per nonzero group plus one per zero summary."""
        return sum(1 for p in self.nodes if p.is_leaf)

    def group_counts_below(self, pnode: PNode) -> np.ndarray:
        """Counts of every group (including zeros) below ``pnode``, in
        group-index order.  O(groups below); used by evaluators and
        tests, not by the dynamic programs."""
        idx = self.table.group_indices_below(pnode.node)
        return self.counts[idx]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PrunedHierarchy({len(self.nodes)} nodes, "
            f"{self.num_nonzero_groups} nonzero groups, "
            f"{self.root.n_groups} total groups)"
        )
