"""End-to-end tests of the monitoring system (Figure 1 pipeline)."""

import numpy as np
import pytest

from repro import UIDDomain, get_metric
from repro.data import TrafficModel, generate_subnet_table
from repro.data.traffic import generate_timestamped_trace
from repro.obs import MetricsRegistry, use_registry
from repro.streams import FaultModel, MonitoringSystem, Trace


@pytest.fixture(scope="module")
def workload():
    dom = UIDDomain(10)
    table = generate_subnet_table(dom, seed=2)
    ts, uids = generate_timestamped_trace(
        table, 8000, duration=40.0, seed=4,
        model=TrafficModel(active_fraction=0.15, zipf_exponent=1.2),
    )
    trace = Trace(ts, uids)
    return table, trace.slice_time(0, 20), trace.slice_time(20, 40)


@pytest.mark.parametrize("algorithm", ["nonoverlapping", "overlapping",
                                       "lpm_greedy"])
def test_pipeline_runs_for_every_algorithm(workload, algorithm):
    table, history, live = workload
    system = MonitoringSystem(
        table, get_metric("rms"), num_monitors=2,
        algorithm=algorithm, budget=40,
    )
    system.train(history)
    report = system.run(live, window_width=5.0)
    assert len(report.windows) >= 3
    assert np.isfinite(report.mean_error)
    assert report.upstream_bytes > 0


def test_histograms_beat_raw_stream(workload):
    table, history, live = workload
    system = MonitoringSystem(
        table, get_metric("rms"), num_monitors=3,
        algorithm="lpm_greedy", budget=50,
    )
    system.train(history)
    report = system.run(live, window_width=5.0)
    assert report.compression_ratio > 2.0
    assert report.raw_bytes == sum(w.raw_bytes for w in report.windows)


def test_more_budget_decreases_error(workload):
    table, history, live = workload
    errors = {}
    for budget in (5, 80):
        system = MonitoringSystem(
            table, get_metric("average"), num_monitors=2,
            algorithm="overlapping", budget=budget,
        )
        system.train(history)
        errors[budget] = system.run(live, window_width=10.0).mean_error
    assert errors[80] <= errors[5] + 1e-9


def test_run_before_train_rejected(workload):
    table, _history, live = workload
    system = MonitoringSystem(table, get_metric("rms"))
    with pytest.raises(RuntimeError):
        system.run(live, window_width=5.0)


def test_monitor_count_validated(workload):
    table, _h, _l = workload
    with pytest.raises(ValueError):
        MonitoringSystem(table, get_metric("rms"), num_monitors=0)


def test_single_monitor_equals_exact_bucket_counts(workload):
    """With one monitor, merged histograms must equal the histogram of
    the whole window: splitting traffic across monitors is lossless."""
    table, history, live = workload
    sys1 = MonitoringSystem(table, get_metric("rms"), num_monitors=1,
                            algorithm="overlapping", budget=30)
    sys3 = MonitoringSystem(table, get_metric("rms"), num_monitors=3,
                            algorithm="overlapping", budget=30)
    sys1.train(history)
    sys3.train(history)
    r1 = sys1.run(live, window_width=20.0)
    r3 = sys3.run(live, window_width=20.0)
    assert r1.windows[0].error == pytest.approx(r3.windows[0].error, rel=1e-9)


def test_zero_tuple_window_keeps_uid_dtype(workload):
    """Regression: a tumbling window with no tuples must decode cleanly,
    with the merged UID array staying integer-typed (an implicit
    ``np.empty(0)`` is float64 and breaks downstream lookups)."""
    table, history, _live = workload
    system = MonitoringSystem(
        table, get_metric("rms"), num_monitors=1,
        algorithm="lpm_greedy", budget=30,
    )
    system.train(history)
    # Two bursts separated by a silent gap: the middle window is empty.
    uids = history.uids[:40]
    ts = np.concatenate([
        np.linspace(0.0, 0.9, 20),     # window 0
        np.linspace(2.0, 2.9, 20),     # window 2; window 1 is silent
    ])
    report = system.run(Trace(ts, uids), window_width=1.0)
    assert len(report.windows) == 3
    empty = report.windows[1]
    assert empty.tuples == 0
    assert empty.error == 0.0
    assert np.isfinite(report.mean_error)


class TestFaultyPipeline:
    def test_zero_fault_model_is_golden_identical(self, workload):
        """With every fault probability at zero, a run with a
        FaultModel must be byte-identical to a run without one — the
        fault machinery adds no observable behavior until a fault
        actually fires."""
        table, history, live = workload
        reports = {}
        systems = {}
        for key, faults in (("clean", None), ("zero", FaultModel(seed=7))):
            system = MonitoringSystem(
                table, get_metric("rms"), num_monitors=3,
                algorithm="lpm_greedy", budget=40,
            )
            system.train(history)
            systems[key] = system
            reports[key] = system.run(live, window_width=5.0, faults=faults)
        clean, zero = reports["clean"], reports["zero"]
        # WindowReport is a frozen dataclass: == is exact, field by
        # field, floats included.
        assert zero.windows == clean.windows
        assert zero.upstream_bytes == clean.upstream_bytes
        assert zero.function_bytes == clean.function_bytes
        assert zero.raw_bytes == clean.raw_bytes
        assert zero.mean_error == clean.mean_error
        assert zero.compression_ratio == clean.compression_ratio
        def wire(channel):
            return [
                (m.monitor, m.window_index, m.function_version,
                 m.histogram.counts, m.histogram.unmatched,
                 m.histogram.total)
                for m in channel.messages
            ]

        assert wire(systems["zero"].channel) == wire(systems["clean"].channel)

    def test_total_message_loss_reports_degraded_windows(self, workload):
        """Losing every histogram must *report* each window as fully
        degraded (zero estimates, finite error), never skip it: the
        pre-fault code's silent ``continue`` on an empty message list
        is now an explicit, tested policy."""
        table, history, live = workload
        clean = MonitoringSystem(
            table, get_metric("rms"), num_monitors=2,
            algorithm="lpm_greedy", budget=40,
        )
        clean.train(history)
        baseline = clean.run(live, window_width=5.0)
        lossy = MonitoringSystem(
            table, get_metric("rms"), num_monitors=2,
            algorithm="lpm_greedy", budget=40,
        )
        lossy.train(history)
        report = lossy.run(
            live, window_width=5.0, faults=FaultModel(drop=1.0)
        )
        assert len(report.windows) == len(baseline.windows)
        for w in report.windows:
            assert w.monitors_reporting == 0
            assert np.isfinite(w.error)
        # Transmissions still happened and were still charged.
        assert report.upstream_bytes == baseline.upstream_bytes
        assert not lossy.channel.delivered

    def test_faulty_end_to_end_accounting_and_counters(self, workload):
        """The acceptance scenario: drop=0.2, dup=0.1, seed=42 over 4
        monitors completes with finite errors, per-window accounting
        that matches what actually crossed the wire, and repro.obs
        counters that agree with the report."""
        table, history, live = workload
        system = MonitoringSystem(
            table, get_metric("rms"), num_monitors=4,
            algorithm="lpm_greedy", budget=40,
        )
        registry = MetricsRegistry()
        with use_registry(registry):
            system.train(history)
            report = system.run(
                live, window_width=5.0,
                faults=FaultModel(drop=0.2, duplicate=0.1, seed=42),
            )
        assert report.windows
        for w in report.windows:
            assert np.isfinite(w.error)
        # monitors_reporting mirrors the surviving deliveries.
        survivors = {}
        for d in system.channel.delivered:
            survivors.setdefault(d.message.window_index, set()).add(
                d.message.monitor
            )
        for w in report.windows:
            assert w.monitors_reporting == len(
                survivors.get(w.window_index, set())
            )
        # Per-window duplicates: surviving copies minus unique keys.
        arrived = {}
        for d in system.channel.delivered:
            key = (d.message.monitor, d.message.window_index)
            arrived[key] = arrived.get(key, 0) + 1
        for w in report.windows:
            expected_dupes = sum(
                n - 1
                for (_, wi), n in arrived.items()
                if wi == w.window_index
            )
            assert w.duplicates_dropped == expected_dupes
        # obs counters agree with both the channel and the report.
        dropped = registry.get("counter", "channel.faults.dropped")
        assert dropped is not None
        assert dropped.value == len(system.channel.messages) - len(
            system.channel.delivered
        )
        dup_counter = registry.get("counter", "control.decode.duplicates")
        total_dupes = sum(w.duplicates_dropped for w in report.windows)
        assert total_dupes > 0
        assert dup_counter is not None and dup_counter.value == total_dupes
        up = registry.get("counter", "channel.upstream.bytes")
        assert up.value == report.upstream_bytes

    def test_crash_and_reinstall_recovers(self, workload):
        """A crashed Monitor misses windows until the install
        scheduler reaches it, then reports again; reinstalls are
        charged downstream."""
        table, history, live = workload
        system = MonitoringSystem(
            table, get_metric("rms"), num_monitors=3,
            algorithm="lpm_greedy", budget=40,
        )
        system.train(history)
        baseline_function_bytes = system.channel.downstream_bytes
        report = system.run(
            live, window_width=5.0,
            faults=FaultModel(crash=0.35, seed=9),
        )
        assert report.monitor_crashes > 0
        assert report.function_bytes > baseline_function_bytes
        assert any(
            w.monitors_reporting < len(system.monitors)
            for w in report.windows
        )
        # Recovery happened: some later window is back to full strength.
        assert any(
            w.monitors_reporting == len(system.monitors)
            for w in report.windows
        )
        for w in report.windows:
            assert np.isfinite(w.error)

    def test_delayed_messages_are_late_not_decoded(self, workload):
        """Every delivery delayed by >= 1 window misses its decode
        watermark: it shows up as a late (or expired) message, never in
        monitors_reporting."""
        table, history, live = workload
        system = MonitoringSystem(
            table, get_metric("rms"), num_monitors=2,
            algorithm="lpm_greedy", budget=40,
        )
        system.train(history)
        report = system.run(
            live, window_width=5.0,
            faults=FaultModel(delay=1.0, max_delay_windows=2, seed=1),
        )
        assert all(w.monitors_reporting == 0 for w in report.windows)
        late_or_expired = (
            sum(w.late_messages for w in report.windows)
            + report.expired_messages
        )
        assert late_or_expired == len(system.channel.delivered)
        assert late_or_expired > 0


class TestCompressionRatio:
    def test_nothing_sent_is_zero(self):
        from repro.streams.system import SystemReport

        assert SystemReport().compression_ratio == 0.0

    def test_ratio_when_traffic_flowed(self):
        from repro.streams.system import SystemReport

        report = SystemReport(
            function_bytes=100, upstream_bytes=400, raw_bytes=10_000
        )
        assert report.compression_ratio == pytest.approx(20.0)


class TestWireFormatV2:
    """The v2 wire format through the whole pipeline: identical
    estimates, cheaper link, both algorithms of transport."""

    @pytest.mark.parametrize("algorithm", ["nonoverlapping", "overlapping",
                                           "lpm_greedy"])
    def test_v2_estimates_bit_identical_to_v1(self, workload, algorithm):
        table, history, live = workload
        reports = {}
        for wire in ("v1", "v2"):
            system = MonitoringSystem(
                table, get_metric("rms"), num_monitors=3,
                algorithm=algorithm, budget=40, wire_format=wire,
            )
            system.train(history)
            reports[wire] = system.run(live, window_width=5.0)
        v1, v2 = reports["v1"], reports["v2"]
        assert [w.error for w in v1.windows] == [
            w.error for w in v2.windows
        ]
        assert v2.upstream_bytes <= v1.upstream_bytes

    def test_v2_naive_and_fast_kernels_bit_identical(self, workload):
        from repro.streams import use_stream_kernel_mode

        table, history, live = workload
        errors = {}
        for mode in ("fast", "naive"):
            with use_stream_kernel_mode(mode):
                system = MonitoringSystem(
                    table, get_metric("rms"), num_monitors=3,
                    algorithm="lpm_greedy", budget=40, wire_format="v2",
                )
                system.train(history)
                errors[mode] = [
                    w.error for w in system.run(live, window_width=5.0).windows
                ]
        assert errors["fast"] == errors["naive"]

    def test_v2_messages_carry_real_payload_bytes(self, workload):
        table, history, live = workload
        system = MonitoringSystem(
            table, get_metric("rms"), num_monitors=2,
            algorithm="lpm_greedy", budget=40, wire_format="v2",
        )
        system.train(history)
        system.run(live, window_width=5.0)
        assert system.channel.messages
        charged = sum(
            8 + len(m.payload) for m in system.channel.messages
        )
        assert charged == system.channel.upstream_bytes

    def test_unknown_wire_format_rejected(self, workload):
        table, _history, _live = workload
        with pytest.raises(ValueError):
            MonitoringSystem(table, get_metric("rms"), wire_format="v3")


class TestParallelPoolRobustness:
    def test_mid_run_exception_raises_and_leaks_no_threads(self, workload):
        """A poisoned window under ``parallel>1`` must propagate the
        exception, reap every pool thread (the pool is context-managed
        per run), and leave the system usable for the next run."""
        import threading

        table, history, live = workload
        system = MonitoringSystem(
            table, get_metric("rms"), num_monitors=2,
            algorithm="lpm_greedy", budget=40, parallel=3,
        )
        system.train(history)
        reference = system.run(live, window_width=5.0)

        victim = system.monitors[0]
        original_build = victim._build
        calls = {"n": 0}

        def poisoned_build(uids, values):
            calls["n"] += 1
            if calls["n"] > 3:
                raise RuntimeError("poisoned window")
            return original_build(uids, values)

        victim._build = poisoned_build
        with pytest.raises(RuntimeError, match="poisoned window"):
            system.run(live, window_width=5.0)
        leaked = [
            t for t in threading.enumerate()
            if t.name.startswith("repro-partition")
        ]
        assert leaked == []

        victim._build = original_build
        recovered = system.run(live, window_width=5.0)
        assert recovered.windows == reference.windows
        assert recovered.mean_error == reference.mean_error
