"""Construction perf harness: kernel-mode speedups over a size grid.

Times nonoverlapping and overlapping construction in every kernel mode
(``naive`` — the seed implementation, ``fast`` — the vectorized
kernels, ``suffstats`` — fast plus O(1) sufficient-statistic grperr)
across an |G| × budget grid, verifies that the fast curves are
numerically identical to the naive reference (zero tolerance on finite
entries; suffstats to tight allclose), and writes the measurements to
``BENCH_construction.json`` at the repo root so perf PRs have a
recorded trajectory.

Usage::

    python benchmarks/bench_kernel.py               # full grid
    python benchmarks/bench_kernel.py --grid tiny   # CI smoke grid
    python benchmarks/bench_kernel.py --out /tmp/bench.json

The figure benches add their own per-series build timings to the same
file via :func:`figlib.merge_construction_timings`.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import PrunedHierarchy, UIDDomain, get_metric
from repro.algorithms import (
    build_nonoverlapping,
    build_overlapping,
    use_kernel_mode,
)
from repro.data import TrafficModel, generate_subnet_table, generate_trace

SCHEMA = "repro.bench_construction.v1"

DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir,
    "BENCH_construction.json",
)

#: (height, packets, base_stop, depth_ramp) rows of the workload grid.
#: The traffic model is a dense zipf mix — high active fraction keeps
#: the pruned hierarchy deep, which is the regime the DP kernels are
#: built for (sparse workloads spend their time elsewhere).
FULL_SIZES: List[Tuple[int, int, float, float]] = [
    (14, 1_000_000, 0.03, 0.01),
    (16, 2_000_000, 0.03, 0.01),
    (18, 5_000_000, 0.03, 0.01),
]
FULL_BUDGETS = [100, 400]

TINY_SIZES: List[Tuple[int, int, float, float]] = [(10, 30_000, 0.05, 0.02)]
TINY_BUDGETS = [20]

MODES = ["naive", "fast", "suffstats"]

ALGORITHMS = {
    "nonoverlapping": build_nonoverlapping,
    "overlapping": build_overlapping,
}


def _workload(height: int, packets: int, base_stop: float, depth_ramp: float):
    table = generate_subnet_table(
        UIDDomain(height), seed=7, base_stop=base_stop, depth_ramp=depth_ramp
    )
    model = TrafficModel(
        mode="zipf", active_fraction=0.95, zipf_exponent=1.1
    )
    uids = generate_trace(table, packets, seed=11, model=model)
    counts = table.counts_from_uids(uids)
    return table, counts, PrunedHierarchy(table, counts)


def _curves_identical(ref: np.ndarray, got: np.ndarray) -> bool:
    """Zero-tolerance identity on finite entries, same infeasible set."""
    ref_fin = np.isfinite(ref)
    return bool(
        np.array_equal(ref_fin, np.isfinite(got))
        and np.array_equal(ref[ref_fin], got[ref_fin])
    )


def _curves_close(ref: np.ndarray, got: np.ndarray) -> bool:
    ref_fin = np.isfinite(ref)
    return bool(
        np.array_equal(ref_fin, np.isfinite(got))
        and np.allclose(ref[ref_fin], got[ref_fin], rtol=1e-9, atol=1e-12)
    )


def run_grid(grid: str) -> Dict[str, object]:
    sizes, budgets = (
        (TINY_SIZES, TINY_BUDGETS) if grid == "tiny"
        else (FULL_SIZES, FULL_BUDGETS)
    )
    metric = get_metric("rms")
    points: List[Dict[str, object]] = []
    for height, packets, base_stop, depth_ramp in sizes:
        table, counts, hierarchy = _workload(
            height, packets, base_stop, depth_ramp
        )
        workload = {
            "height": height,
            "packets": packets,
            "groups": table.num_groups,
            "pruned_nodes": len(hierarchy.nodes),
            "nonzero_groups": int(np.count_nonzero(counts)),
            "traffic": "zipf(active=0.95, s=1.1)",
        }
        for budget in budgets:
            for name, builder in ALGORITHMS.items():
                # Untimed warmup: populates the hierarchy's structure
                # caches (shared by every mode) so mode order doesn't
                # bias the timings.
                with use_kernel_mode("fast"):
                    builder(hierarchy, metric, budget)
                seconds: Dict[str, float] = {}
                curves: Dict[str, np.ndarray] = {}
                for mode in MODES:
                    with use_kernel_mode(mode):
                        t0 = time.perf_counter()
                        result = builder(hierarchy, metric, budget)
                        seconds[mode] = time.perf_counter() - t0
                    curves[mode] = np.asarray(result.curve, dtype=np.float64)
                point = {
                    "workload": workload,
                    "budget": budget,
                    "algorithm": name,
                    "metric": metric.name,
                    "seconds": {m: round(s, 6) for m, s in seconds.items()},
                    "speedup_fast": round(
                        seconds["naive"] / seconds["fast"], 3
                    ),
                    "speedup_suffstats": round(
                        seconds["naive"] / seconds["suffstats"], 3
                    ),
                    "fast_identical": _curves_identical(
                        curves["naive"], curves["fast"]
                    ),
                    "suffstats_close": _curves_close(
                        curves["naive"], curves["suffstats"]
                    ),
                }
                points.append(point)
                print(
                    f"h={height} |G|={workload['groups']} B={budget} "
                    f"{name}: naive={seconds['naive']:.3f}s "
                    f"fast={seconds['fast']:.3f}s "
                    f"({point['speedup_fast']}x, "
                    f"identical={point['fast_identical']}) "
                    f"suffstats={seconds['suffstats']:.3f}s "
                    f"({point['speedup_suffstats']}x, "
                    f"close={point['suffstats_close']})"
                )
    largest = max(
        points,
        key=lambda p: (p["workload"]["groups"], p["budget"]),
    )
    summary = {
        p["algorithm"]: p["speedup_fast"]
        for p in points
        if p["workload"] is largest["workload"]
        and p["budget"] == largest["budget"]
    }
    return {
        "schema": SCHEMA,
        "generated_by": "benchmarks/bench_kernel.py",
        "grid": grid,
        "modes": MODES,
        "points": points,
        "largest_point": {
            "groups": largest["workload"]["groups"],
            "budget": largest["budget"],
            "speedup_fast": summary,
        },
    }


def write_report(doc: Dict[str, object], out: str) -> str:
    """Write the grid results, preserving any figure-series timings a
    previous :func:`figlib.merge_construction_timings` call stored."""
    existing: Dict[str, object] = {}
    if os.path.exists(out):
        try:
            with open(out) as f:
                existing = json.load(f)
        except (OSError, ValueError):
            existing = {}
    if isinstance(existing.get("figure_series"), dict):
        doc = dict(doc, figure_series=existing["figure_series"])
    with open(out, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=False)
        f.write("\n")
    return out


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--grid", choices=("tiny", "full"), default="full",
        help="workload grid: 'tiny' is the CI smoke grid",
    )
    parser.add_argument(
        "--out", default=DEFAULT_OUT,
        help="output JSON path (default: repo-root BENCH_construction.json)",
    )
    args = parser.parse_args(argv)
    doc = run_grid(args.grid)
    path = write_report(doc, args.out)
    print(f"wrote {os.path.abspath(path)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
