"""The v2 histogram wire format: queryable without deserialization.

The v1 codec in :mod:`repro.core.serialize` ships a histogram as a flat
bit string of ``(node, fixed-width counter)`` pairs that the Control
Center must fully decode into a :class:`~.partition.Histogram` before it
can answer anything.  This module is the next step the ROADMAP calls
"query-from-serialized": a byte-aligned, self-describing binary format
whose payload can be *queried in place* — point counts, subtree (range)
totals, per-group estimates, and merges across Monitors all operate on
the raw buffer through :class:`WireHistogram`, a zero-copy view over a
``memoryview``.

Layout (all multi-byte integers little-endian)::

    offset  size  field
    ------  ----  -----------------------------------------------------
    0       2     magic  b"RW"
    2       1     version (currently 2)
    3       1     flags:  bits 0-1  semantics code (see serialize.py)
                          bit  2    FLOAT64 counters (weighted values)
                          bit  3    HAS_TOTALS (explicit total/unmatched)
                          bits 4-7  reserved, must be zero
    4       1     domain height (0..63)
    5       1     counter stride ``w`` in bytes: 1, 2, 4 or 8
    6       4     CRC32 over bytes [0:6] + bytes [10:] (detects any
                  corruption, including of the header fields themselves)
    10      var   LEB128 bucket count ``n``
    [+16]         (HAS_TOTALS only) unmatched, total as float64
    var     var   node-id section: LEB128 first node id, then LEB128
                  successive deltas (node ids are sorted and unique, so
                  every delta is >= 1)
    end-n*w n*w   counter section: ``n`` counters at fixed stride ``w``
                  (unsigned little-endian ints, or float64 when the
                  FLOAT64 flag is set)

Design notes:

* **Self-describing counters.** v1's ``counter_bits`` is an
  out-of-band contract between encoder and decoder (see the hazard
  note in :mod:`repro.core.serialize`); here the stride byte travels
  with the payload and the encoder picks the narrowest width that fits,
  so small windows pay 1-byte counters instead of v1's fixed 32 bits.
* **Fixed-stride counter section.** The counter section sits at the
  *end* of the buffer, so its offset is computable from the header
  alone (``len(data) - n * w``) and counters are directly addressable:
  :attr:`WireHistogram.values` is one ``np.frombuffer`` over the
  payload — no copy, no parse.
* **Delta-encoded node ids.** Bucket node ids are sorted, so LEB128
  deltas cost ~``log2(gap)`` bits instead of v1's
  ``ceil(log2(h+1)) + depth`` bits per identifier; dense functions
  (the common case at realistic budgets) pay one byte per bucket.
* **Integrity.** The CRC32 makes every truncation or bit flip a
  :class:`ValueError` at parse time — a corrupted payload can never
  decode to silently-wrong counts (property-tested by the fuzz suite
  in ``tests/test_wire.py``).
* **Exactness.** Integer counters round-trip float64 -> uint -> float64
  losslessly (the encoder rejects non-integral or negative values
  unless the float64 mode is chosen), so v2 decodes are bit-identical
  to the histograms that were encoded, and query-from-wire estimates
  are bit-identical to decode-then-estimate.
* **Mergeability is a format property.** :func:`merge_wire` combines
  payloads into a new payload using the same concatenate/unique/
  bincount accumulation as :meth:`.partition.Histogram.merge`, so
  merged counters are bit-for-bit the values an object-level merge
  would produce — shard fan-in (ROADMAP item 1) never needs to
  materialize :class:`~.partition.Histogram` objects.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .domain import UIDDomain
from .partition import Histogram

__all__ = [
    "WIRE_FORMATS",
    "MAGIC",
    "VERSION",
    "WireHistogram",
    "encode_histogram_v2",
    "encode_histograms_v2",
    "decode_histogram_v2",
    "merge_views",
    "merge_wire",
]

#: Wire formats the streams layer can be asked to speak.
WIRE_FORMATS = ("v1", "v2")

MAGIC = b"RW"
VERSION = 2

_FLAG_SEMANTICS_MASK = 0b0000_0011
_FLAG_FLOAT64 = 0b0000_0100
_FLAG_HAS_TOTALS = 0b0000_1000
_FLAG_RESERVED_MASK = 0b1111_0000

#: flags/semantics codes shared with the v1 function codec.
_SEMANTICS_CODES = {
    "nonoverlapping": 0,
    "overlapping": 1,
    "longest_prefix_match": 2,
}
_CODE_SEMANTICS = {v: k for k, v in _SEMANTICS_CODES.items()}

_HEADER = struct.Struct("<2sBBBBI")  # magic, version, flags, height, stride, crc
_HEADER_LEN = _HEADER.size  # 10
_TOTALS = struct.Struct("<dd")

_STRIDES = (1, 2, 4, 8)
_UINT_DTYPES = {1: "<u1", 2: "<u2", 4: "<u4", 8: "<u8"}
#: Longest admissible LEB128 encoding (64-bit payloads).
_LEB_MAX_BYTES = 10

#: Counter-mode names accepted by :func:`encode_histogram_v2`.
_COUNTER_MODES = ("auto", "u8", "u16", "u32", "u64", "float64")
_MODE_STRIDE = {"u8": 1, "u16": 2, "u32": 4, "u64": 8, "float64": 8}


def _leb_encode(value: int, out: bytearray) -> None:
    """Append the minimal LEB128 encoding of a nonnegative integer."""
    if value < 0:
        raise ValueError(f"LEB128 values must be nonnegative: {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _leb_decode(data, pos: int, end: int) -> Tuple[int, int]:
    """Decode one LEB128 integer from ``data[pos:end]``.

    Returns ``(value, next_pos)``; raises :class:`ValueError` on
    truncation or on encodings longer than 64 bits (so a corrupted
    continuation bit can never make the decoder loop or build a huge
    integer)."""
    value = 0
    shift = 0
    for i in range(_LEB_MAX_BYTES):
        if pos + i >= end:
            raise ValueError("malformed v2 payload: truncated varint")
        byte = data[pos + i]
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            if value >> 64:
                raise ValueError("malformed v2 payload: varint exceeds 64 bits")
            return value, pos + i + 1
        shift += 7
    raise ValueError("malformed v2 payload: varint longer than 10 bytes")


def _leb_encode_array(values: np.ndarray) -> bytes:
    """Vectorized LEB128 of a nonnegative uint64 array — byte-identical
    to appending :func:`_leb_encode` of each element in order, without
    the per-element Python loop (the profiled hotspot of v2 encode)."""
    if values.size == 0:
        return b""
    values = values.astype(np.uint64, copy=False)
    max_len = (int(values.max()).bit_length() + 6) // 7 or 1
    if max_len == 1:
        # Every value fits one byte (dense histograms: deltas are
        # mostly 1) — the bytes ARE the values.
        return values.astype(np.uint8).tobytes()
    lengths = np.ones(values.size, dtype=np.int64)
    for k in range(1, max_len):
        lengths += values >= (np.uint64(1) << np.uint64(7 * k))
    offsets = np.zeros(values.size, dtype=np.int64)
    np.cumsum(lengths[:-1], out=offsets[1:])
    out = np.zeros(int(offsets[-1] + lengths[-1]), dtype=np.uint8)
    for j in range(max_len):
        mask = lengths > j
        chunk = (values[mask] >> np.uint64(7 * j)) & np.uint64(0x7F)
        cont = (lengths[mask] - 1 > j).astype(np.uint8)
        out[offsets[mask] + j] = chunk.astype(np.uint8) | (
            cont * np.uint8(0x80)
        )
    return out.tobytes()


def _leb_decode_array(
    buf, pos: int, end: int, n: int
) -> Tuple[np.ndarray, int]:
    """Decode exactly ``n`` consecutive LEB128 integers from
    ``buf[pos:end]`` — the vectorized counterpart of ``n`` calls to
    :func:`_leb_decode`, raising the same :class:`ValueError` classes
    for truncated, over-long, and 64-bit-overflowing varints."""
    if n == 0:
        return np.empty(0, dtype=np.uint64), pos
    section = np.frombuffer(buf, dtype=np.uint8, offset=pos, count=end - pos)
    if section.size == n and not bool(np.any(section & 0x80)):
        # All-single-byte section (the dense-histogram common case).
        return section.astype(np.uint64), end
    terminators = np.flatnonzero((section & 0x80) == 0)
    if terminators.size < n:
        # The scalar decoder would run into the unterminated tail run:
        # over-long if 10+ continuation bytes precede it, else truncated.
        tail = (int(terminators[-1]) + 1) if terminators.size else 0
        if (end - pos) - tail >= _LEB_MAX_BYTES:
            raise ValueError(
                "malformed v2 payload: varint longer than 10 bytes"
            )
        raise ValueError("malformed v2 payload: truncated varint")
    ends = terminators[:n]
    starts = np.empty(n, dtype=np.int64)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    lengths = ends - starts + 1
    if bool(np.any(lengths > _LEB_MAX_BYTES)):
        raise ValueError("malformed v2 payload: varint longer than 10 bytes")
    values = np.zeros(n, dtype=np.uint64)
    for j in range(int(lengths.max())):
        mask = lengths > j
        chunk = section[starts[mask] + j].astype(np.uint64) & np.uint64(0x7F)
        if j == _LEB_MAX_BYTES - 1 and bool(np.any(chunk > 1)):
            # The 10th byte contributes bits 63+; anything past bit 63
            # is the scalar decoder's 64-bit overflow error.
            raise ValueError("malformed v2 payload: varint exceeds 64 bits")
        values[mask] |= chunk << np.uint64(7 * j)
    return values, pos + int(ends[-1]) + 1


def _pick_stride(max_value: int) -> int:
    for w in _STRIDES:
        if max_value < (1 << (8 * w)):
            return w
    raise ValueError(
        f"count {max_value} does not fit in a 64-bit wire counter"
    )


def encode_histogram_v2(
    histogram: Histogram,
    domain: UIDDomain,
    semantics: str = "nonoverlapping",
    counters: str = "auto",
) -> bytes:
    """Serialize a histogram to the v2 wire form.

    ``counters`` selects the counter mode: ``"auto"`` (the default)
    uses the narrowest unsigned width that fits every count, switching
    to float64 automatically when any value is non-integral or
    negative; ``"float64"`` forces the weighted-values mode; ``"u8"``/
    ``"u16"``/``"u32"``/``"u64"`` force a fixed unsigned width (a value
    that does not fit raises, exactly like v1's overflow check).

    The histogram's ``unmatched``/``total`` accounting is preserved:
    when it is derivable (no unmatched traffic and ``total`` equals the
    counter sum) it is omitted from the wire and recomputed at decode
    time with the identical float operation, otherwise 16 explicit
    bytes carry it — either way ``decode_histogram_v2`` is a lossless
    inverse.
    """
    if semantics not in _SEMANTICS_CODES:
        known = ", ".join(sorted(_SEMANTICS_CODES))
        raise ValueError(f"unknown semantics {semantics!r}; known: {known}")
    if counters not in _COUNTER_MODES:
        known = ", ".join(_COUNTER_MODES)
        raise ValueError(f"unknown counter mode {counters!r}; known: {known}")
    if not 0 <= domain.height <= 63:
        raise ValueError(f"domain height {domain.height} exceeds wire format")
    nodes = histogram.nodes
    values = histogram.values
    n = int(nodes.size)
    if n and int(nodes[-1]) >= (1 << (domain.height + 1)):
        raise ValueError(
            f"node {int(nodes[-1])} invalid for height {domain.height}"
        )
    if n and int(nodes[0]) < 1:
        raise ValueError(f"invalid node id {int(nodes[0])}")

    float_mode = counters == "float64"
    integral_checked = False
    if counters == "auto" and n:
        integral = bool(
            np.all(values >= 0.0)
            and np.all(values == np.floor(values))
            and np.all(values < float(1 << 64))
        )
        float_mode = not integral
        integral_checked = integral
    if float_mode:
        if n and not np.all(np.isfinite(values)):
            raise ValueError("float64 counters must be finite")
        stride = 8
    else:
        if n and not integral_checked:
            bad = (values < 0) | (values != np.floor(values))
            if bool(np.any(bad)):
                v = values.tolist()[int(np.argmax(bad))]
                raise ValueError(
                    f"count {v} is not a nonnegative integer; use the "
                    f"float64 counter mode for weighted histograms"
                )
        max_value = int(values.max()) if n else 0
        if counters == "auto":
            stride = _pick_stride(max_value)
        else:
            stride = _MODE_STRIDE[counters]
            if max_value >= (1 << (8 * stride)):
                raise ValueError(
                    f"count {max_value} does not fit in "
                    f"{8 * stride}-bit counter"
                )

    # Totals are omitted when decode can recompute them exactly: the
    # decoder sums the (float64) counter view with the same np.sum the
    # check below uses, so equality here guarantees equality there.
    derivable_total = float(np.sum(values)) if n else 0.0
    has_totals = not (
        histogram.unmatched == 0.0 and histogram.total == derivable_total
    )

    flags = _SEMANTICS_CODES[semantics]
    if float_mode:
        flags |= _FLAG_FLOAT64
    if has_totals:
        flags |= _FLAG_HAS_TOTALS

    body = bytearray()
    _leb_encode(n, body)
    if has_totals:
        body += _TOTALS.pack(histogram.unmatched, histogram.total)
    if n:
        deltas = np.empty(n, dtype=np.uint64)
        deltas[0] = np.uint64(int(nodes[0]))
        if n > 1:
            deltas[1:] = np.diff(nodes).astype(np.uint64)
        body += _leb_encode_array(deltas)
    if float_mode:
        body += np.ascontiguousarray(values, dtype="<f8").tobytes()
    else:
        body += values.astype(_UINT_DTYPES[stride]).tobytes()

    head = MAGIC + bytes([VERSION, flags, domain.height, stride])
    crc = zlib.crc32(bytes(body), zlib.crc32(head))
    return head + struct.pack("<I", crc) + bytes(body)


def encode_histograms_v2(
    histograms: Sequence[Histogram],
    domain: UIDDomain,
    semantics: str = "nonoverlapping",
    counters: str = "auto",
) -> List[bytes]:
    """Batched :func:`encode_histogram_v2`: encode many histograms in
    one vectorized pass, byte-identical to encoding each separately.

    The scalar encoder's cost at realistic bucket counts is fixed
    numpy-call overhead (~15 small array ops per histogram), not
    arithmetic — the profiled ingest hotspot of the serving layer's
    shard workers, which encode every window of a run in one go.  This
    path hoists those ops over the concatenated bucket arrays: one
    integrality/finiteness scan with per-histogram ``reduceat``
    reductions, one delta computation, one vectorized LEB128 pass
    (sliced back per histogram — element encodings are position
    independent), and one counter-section conversion per distinct
    stride.  Per-histogram work is reduced to header assembly, the
    totals check and a CRC32.

    Only the ``"auto"`` counter mode is batched; explicit modes fall
    back to the scalar encoder per histogram.
    """
    histograms = list(histograms)
    if counters != "auto" or not histograms:
        return [
            encode_histogram_v2(h, domain, semantics, counters=counters)
            for h in histograms
        ]
    if semantics not in _SEMANTICS_CODES:
        known = ", ".join(sorted(_SEMANTICS_CODES))
        raise ValueError(f"unknown semantics {semantics!r}; known: {known}")
    if not 0 <= domain.height <= 63:
        raise ValueError(f"domain height {domain.height} exceeds wire format")
    sem_code = _SEMANTICS_CODES[semantics]
    node_limit = 1 << (domain.height + 1)

    sizes = [int(h.nodes.size) for h in histograms]
    nonempty = [k for k, n in enumerate(sizes) if n]
    total = sum(sizes)
    if total:
        all_nodes = np.concatenate([histograms[k].nodes for k in nonempty])
        all_values = np.concatenate([histograms[k].values for k in nonempty])
        starts = np.zeros(len(nonempty), dtype=np.int64)
        np.cumsum([sizes[k] for k in nonempty[:-1]], out=starts[1:])
        # Per-histogram reductions over one elementwise scan.  The
        # segment boundaries are exactly the scalar encoder's per-call
        # array extents, so each reduction equals its np.all/np.max.
        ok = (
            (all_values >= 0.0)
            & (all_values == np.floor(all_values))
            & (all_values < float(1 << 64))
        )
        seg_integral = np.minimum.reduceat(ok, starts)
        seg_finite = np.minimum.reduceat(np.isfinite(all_values), starts)
        seg_max = np.maximum.reduceat(all_values, starts)
        # One delta pass: cross-histogram positions get garbage from
        # the global diff, then every segment start is overwritten with
        # its absolute first node — the scalar encoder's layout.
        deltas = np.empty(total, dtype=np.uint64)
        if total > 1:
            deltas[1:] = np.diff(all_nodes).astype(np.uint64)
        deltas[starts] = all_nodes[starts].astype(np.uint64)
        leb_blob = _leb_encode_array(deltas)
        # Element encodings are position independent, so per-histogram
        # slices of the global LEB blob equal per-histogram encodes.
        lens = np.ones(total, dtype=np.int64)
        for k in range(1, _LEB_MAX_BYTES):
            lens += deltas >= (np.uint64(1) << np.uint64(7 * k))
        byte_ends = np.cumsum(np.add.reduceat(lens, starts))
        f_blob = np.ascontiguousarray(all_values, dtype="<f8").tobytes()
        value_ends = starts + np.asarray(
            [sizes[k] for k in nonempty], dtype=np.int64
        )
    # Counter sections are converted per distinct stride over only the
    # histograms using it (converting foreign segments could overflow).
    stride_blobs: dict = {}

    integral = {}
    float_mode = {}
    stride_of = {}
    for j, k in enumerate(nonempty):
        integral[k] = bool(seg_integral[j])
        if integral[k]:
            float_mode[k] = False
            stride_of[k] = _pick_stride(int(seg_max[j]))
        else:
            if not bool(seg_finite[j]):
                raise ValueError("float64 counters must be finite")
            float_mode[k] = True
            stride_of[k] = 8
    by_stride: dict = {}
    for j, k in enumerate(nonempty):
        if not float_mode[k]:
            by_stride.setdefault(stride_of[k], []).append((j, k))
    for stride, members in by_stride.items():
        blob = np.concatenate(
            [histograms[k].values for _j, k in members]
        ).astype(_UINT_DTYPES[stride]).tobytes()
        offset = 0
        for _j, k in members:
            end = offset + sizes[k] * stride
            stride_blobs[k] = blob[offset:end]
            offset = end

    payloads: List[bytes] = []
    j = 0  # nonempty cursor
    for k, h in enumerate(histograms):
        n = sizes[k]
        if n:
            if int(h.nodes[-1]) >= node_limit:
                raise ValueError(
                    f"node {int(h.nodes[-1])} invalid for height "
                    f"{domain.height}"
                )
            if int(h.nodes[0]) < 1:
                raise ValueError(f"invalid node id {int(h.nodes[0])}")
            stride = stride_of[k]
            fmode = float_mode[k]
        else:
            stride = _pick_stride(0)
            fmode = False
        if h.unmatched != 0.0:
            # Totals can't be derivable; skip the sum the scalar
            # encoder would compute and discard.
            has_totals = True
        else:
            # Same pairwise np.sum as the scalar encoder (reduceat's
            # sequential accumulation could differ in the last bits).
            derivable_total = float(np.sum(h.values)) if n else 0.0
            has_totals = h.total != derivable_total
        flags = sem_code
        if fmode:
            flags |= _FLAG_FLOAT64
        if has_totals:
            flags |= _FLAG_HAS_TOTALS
        body = bytearray()
        _leb_encode(n, body)
        if has_totals:
            body += _TOTALS.pack(h.unmatched, h.total)
        if n:
            leb_lo = int(byte_ends[j - 1]) if j else 0
            body += leb_blob[leb_lo:int(byte_ends[j])]
            if fmode:
                body += f_blob[int(starts[j]) * 8:int(value_ends[j]) * 8]
            else:
                body += stride_blobs[k]
            j += 1
        head = MAGIC + bytes([VERSION, flags, domain.height, stride])
        crc = zlib.crc32(bytes(body), zlib.crc32(head))
        payloads.append(head + struct.pack("<I", crc) + bytes(body))
    return payloads


class WireHistogram:
    """A zero-copy queryable view over a v2 payload.

    Construction validates the whole buffer — header fields, CRC32,
    varint structure, node monotonicity and bounds — and raises
    :class:`ValueError` for *any* truncated or corrupted input; a
    successfully constructed view is safe to query.  The counter
    section is never copied: :attr:`values` is an ``np.frombuffer``
    window into the original buffer, and every query below is a gather
    over it.
    """

    __slots__ = (
        "data",
        "height",
        "semantics",
        "float_counters",
        "stride",
        "nodes",
        "unmatched",
        "total",
        "_counters_off",
        "_values",
    )

    def __init__(self, data) -> None:
        view = memoryview(data)
        if view.nbytes < _HEADER_LEN:
            raise ValueError(
                f"malformed v2 payload: {view.nbytes} bytes is shorter "
                f"than the {_HEADER_LEN}-byte header"
            )
        magic, version, flags, height, stride, crc = _HEADER.unpack_from(
            view, 0
        )
        if magic != MAGIC:
            raise ValueError(
                f"malformed v2 payload: bad magic {bytes(magic)!r}"
            )
        if version != VERSION:
            raise ValueError(
                f"unsupported wire version {version} (expected {VERSION})"
            )
        if flags & _FLAG_RESERVED_MASK:
            raise ValueError(
                f"malformed v2 payload: reserved flag bits set ({flags:#04x})"
            )
        semantics_code = flags & _FLAG_SEMANTICS_MASK
        if semantics_code not in _CODE_SEMANTICS:
            raise ValueError(
                f"malformed v2 payload: bad semantics code {semantics_code}"
            )
        if height > 63:
            raise ValueError(f"malformed v2 payload: height {height} > 63")
        if stride not in _STRIDES:
            raise ValueError(
                f"malformed v2 payload: counter stride {stride} not in "
                f"{_STRIDES}"
            )
        float_counters = bool(flags & _FLAG_FLOAT64)
        if float_counters and stride != 8:
            raise ValueError(
                f"malformed v2 payload: float64 counters need stride 8, "
                f"got {stride}"
            )
        expect = zlib.crc32(
            view[_HEADER_LEN:], zlib.crc32(view[:6])
        )
        if expect != crc:
            raise ValueError(
                f"corrupt v2 payload: CRC mismatch "
                f"(header {crc:#010x}, computed {expect:#010x})"
            )
        buf = view.tobytes() if not isinstance(data, bytes) else data
        pos = _HEADER_LEN
        end = len(buf)
        n, pos = _leb_decode(buf, pos, end)
        unmatched = 0.0
        total: Optional[float] = None
        if flags & _FLAG_HAS_TOTALS:
            if pos + _TOTALS.size > end:
                raise ValueError("malformed v2 payload: truncated totals")
            unmatched, total = _TOTALS.unpack_from(buf, pos)
            if not (np.isfinite(unmatched) and np.isfinite(total)):
                raise ValueError(
                    "malformed v2 payload: non-finite totals"
                )
            pos += _TOTALS.size
        counters_off = end - n * stride
        if counters_off < pos:
            raise ValueError(
                f"malformed v2 payload: {n} counters of stride {stride} "
                f"do not fit in {end - pos} remaining bytes"
            )
        node_limit = 1 << (height + 1)
        deltas, pos = _leb_decode_array(buf, pos, counters_off, n)
        if n:
            if int(deltas[0]) < 1:
                raise ValueError("malformed v2 payload: node id 0")
            if n > 1 and bool(np.any(deltas[1:] == np.uint64(0))):
                raise ValueError(
                    "malformed v2 payload: node ids not strictly increasing"
                )
            nodes_u = np.cumsum(deltas)
            # Deltas are all >= 1, so a uint64 cumsum that fails to
            # strictly increase means the running node id wrapped past
            # 2**64 — the scalar decoder's out-of-range error.
            wrapped = n > 1 and bool(np.any(nodes_u[1:] <= nodes_u[:-1]))
            last = int(nodes_u[-1])
            if wrapped or last >= node_limit or last >= (1 << 63):
                raise ValueError(
                    f"malformed v2 payload: node {last} invalid for "
                    f"height {height}"
                )
            nodes = nodes_u.astype(np.int64)
        else:
            nodes = np.empty(0, dtype=np.int64)
        if pos != counters_off:
            raise ValueError(
                f"malformed v2 payload: {counters_off - pos} stray bytes "
                f"between node and counter sections"
            )
        self.data = buf
        self.height = int(height)
        self.semantics = _CODE_SEMANTICS[semantics_code]
        self.float_counters = float_counters
        self.stride = int(stride)
        self.nodes = nodes
        self._counters_off = counters_off
        self._values: Optional[np.ndarray] = None
        if float_counters and n and not np.all(np.isfinite(self.values)):
            raise ValueError("malformed v2 payload: non-finite counter")
        self.unmatched = float(unmatched)
        if total is None:
            # Recompute with the same operation the encoder checked, so
            # the omitted-totals path is exactly lossless.
            total = float(np.sum(np.asarray(self.values, dtype=np.float64)))
            total = total if n else 0.0
        self.total = float(total)

    # -- the zero-copy counter window -----------------------------------
    @property
    def values(self) -> np.ndarray:
        """The counter section as a numpy view over the raw buffer
        (float64 for weighted payloads, unsigned ints otherwise).  No
        bytes are copied; the array aliases ``self.data``."""
        if self._values is None:
            dtype = "<f8" if self.float_counters else _UINT_DTYPES[self.stride]
            self._values = np.frombuffer(
                self.data, dtype=dtype, count=int(self.nodes.size),
                offset=self._counters_off,
            )
        return self._values

    def __len__(self) -> int:
        return int(self.nodes.size)

    @property
    def size_bytes(self) -> int:
        return len(self.data)

    # -- point / range queries ------------------------------------------
    def count(self, node: int) -> float:
        """The counter at ``node`` (0.0 when the bucket is absent) —
        one binary search plus one buffer read."""
        k = int(np.searchsorted(self.nodes, node))
        if k < self.nodes.size and int(self.nodes[k]) == node:
            return float(self.values[k])
        return 0.0

    def subtree_total(self, node: int) -> float:
        """Sum of all bucket counters inside the subtree of ``node`` —
        a range query straight off the wire bytes.

        A subtree's node ids are contiguous *per depth* (the depth-``d``
        descendants of ``node`` occupy ``[node << k, (node + 1) << k)``
        for ``k = d - depth(node)``), so the query is one
        ``searchsorted`` pair per level below ``node``.
        """
        if node < 1 or node >= (1 << (self.height + 1)):
            raise ValueError(
                f"node {node} invalid for height {self.height}"
            )
        total = 0.0
        depth = UIDDomain.depth(node)
        values = self.values
        for k in range(self.height - depth + 1):
            lo = int(np.searchsorted(self.nodes, node << k))
            hi = int(np.searchsorted(self.nodes, (node + 1) << k))
            if hi > lo:
                total += float(np.sum(values[lo:hi], dtype=np.float64))
        return total

    # -- interop ---------------------------------------------------------
    def to_histogram(self) -> Histogram:
        """Materialize a :class:`~.partition.Histogram` (the naive
        decode path; bit-identical counters by construction)."""
        return Histogram.from_arrays(
            self.nodes.copy(),
            np.asarray(self.values, dtype=np.float64),
            unmatched=self.unmatched,
            total=self.total,
        )

    def merge(self, other: "WireHistogram") -> bytes:
        """Merge two payloads into a new v2 payload without building
        :class:`~.partition.Histogram` objects."""
        return merge_wire([self, other])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "float64" if self.float_counters else f"u{8 * self.stride}"
        return (
            f"WireHistogram({len(self)} buckets, {kind} counters, "
            f"{self.size_bytes} bytes)"
        )


def decode_histogram_v2(data) -> Histogram:
    """Decode a v2 payload into a :class:`~.partition.Histogram` (the
    reference path; :class:`WireHistogram` queries the bytes in place
    instead)."""
    return WireHistogram(data).to_histogram()


def _as_wire(payload) -> WireHistogram:
    return payload if isinstance(payload, WireHistogram) else WireHistogram(
        payload
    )


def merge_views(views: Sequence) -> Tuple[np.ndarray, np.ndarray, float, float]:
    """The k-way fan-in arithmetic shared by every merge path: combine
    bucket views into ``(nodes, sums, unmatched, total)``.

    ``views`` may be :class:`WireHistogram` views,
    :class:`~.partition.Histogram` objects, or anything else exposing
    sorted ``nodes``, parallel ``values``, ``unmatched`` and ``total``.
    Counter accumulation is the same concatenate + ``np.unique`` +
    ``np.bincount`` sequence as :meth:`.partition.Histogram.merge`, and
    totals accumulate in argument order, so the result is bit-for-bit
    what an object-level merge of the decoded histograms would produce.
    This is the shard fan-in primitive: the serving layer merges the
    per-shard views once per window through this function and decodes
    exactly once at the tenant boundary — no intermediate merged
    payload is materialized.
    """
    if not views:
        raise ValueError("merge_views needs at least one view")
    unmatched = 0.0
    total = 0.0
    for v in views:
        unmatched += v.unmatched
        total += v.total
    if len(views) == 1:
        nodes = views[0].nodes
        sums = np.asarray(views[0].values, dtype=np.float64)
    elif all(
        v.nodes.size == views[0].nodes.size
        and np.array_equal(v.nodes, views[0].nodes)
        for v in views[1:]
    ):
        # Aligned fast path — every shard runs the same partitioning
        # function and ships the full slot-node array, so the k views
        # share one node layout and the merge is a running elementwise
        # sum.  ``np.bincount`` adds weights into zero-initialized bins
        # in input order, i.e. per bucket ``0.0 + v_0 + v_1 + ...``
        # left to right — exactly the accumulation below, so the
        # counters stay bit-identical to the
        # concatenate/unique/bincount path.
        nodes = views[0].nodes
        sums = np.zeros(nodes.size, dtype=np.float64)
        for v in views:
            sums += np.asarray(v.values, dtype=np.float64)
    else:
        all_nodes = np.concatenate([v.nodes for v in views])
        all_values = np.concatenate(
            [np.asarray(v.values, dtype=np.float64) for v in views]
        )
        nodes, inverse = np.unique(all_nodes, return_inverse=True)
        sums = np.bincount(
            inverse, weights=all_values, minlength=nodes.size
        )
    return nodes, sums, unmatched, total


def merge_wire(payloads: Sequence) -> bytes:
    """Merge v2 payloads (bytes or :class:`WireHistogram` views) into
    one v2 payload.

    The accumulation is :func:`merge_views`, so the merged counters are
    bit-for-bit what an object-level merge of the decoded histograms
    would produce — mergeability is a property of the format, not a
    decode step.
    """
    views = [_as_wire(p) for p in payloads]
    if not views:
        raise ValueError("merge_wire needs at least one payload")
    height = views[0].height
    semantics = views[0].semantics
    for v in views[1:]:
        if v.height != height:
            raise ValueError(
                f"cannot merge payloads over different domains "
                f"(heights {height} and {v.height})"
            )
        if v.semantics != semantics:
            raise ValueError(
                f"cannot merge payloads with different semantics "
                f"({semantics!r} and {v.semantics!r})"
            )
    float_mode = any(v.float_counters for v in views)
    nodes, sums, unmatched, total = merge_views(views)
    merged = Histogram.from_arrays(nodes, sums, unmatched, total)
    return encode_histogram_v2(
        merged,
        UIDDomain(height),
        semantics=semantics,
        counters="float64" if float_mode else "auto",
    )
