"""End-to-end tests of the monitoring system (Figure 1 pipeline)."""

import numpy as np
import pytest

from repro import UIDDomain, get_metric
from repro.data import TrafficModel, generate_subnet_table
from repro.data.traffic import generate_timestamped_trace
from repro.streams import MonitoringSystem, Trace


@pytest.fixture(scope="module")
def workload():
    dom = UIDDomain(10)
    table = generate_subnet_table(dom, seed=2)
    ts, uids = generate_timestamped_trace(
        table, 8000, duration=40.0, seed=4,
        model=TrafficModel(active_fraction=0.15, zipf_exponent=1.2),
    )
    trace = Trace(ts, uids)
    return table, trace.slice_time(0, 20), trace.slice_time(20, 40)


@pytest.mark.parametrize("algorithm", ["nonoverlapping", "overlapping",
                                       "lpm_greedy"])
def test_pipeline_runs_for_every_algorithm(workload, algorithm):
    table, history, live = workload
    system = MonitoringSystem(
        table, get_metric("rms"), num_monitors=2,
        algorithm=algorithm, budget=40,
    )
    system.train(history)
    report = system.run(live, window_width=5.0)
    assert len(report.windows) >= 3
    assert np.isfinite(report.mean_error)
    assert report.upstream_bytes > 0


def test_histograms_beat_raw_stream(workload):
    table, history, live = workload
    system = MonitoringSystem(
        table, get_metric("rms"), num_monitors=3,
        algorithm="lpm_greedy", budget=50,
    )
    system.train(history)
    report = system.run(live, window_width=5.0)
    assert report.compression_ratio > 2.0
    assert report.raw_bytes == sum(w.raw_bytes for w in report.windows)


def test_more_budget_decreases_error(workload):
    table, history, live = workload
    errors = {}
    for budget in (5, 80):
        system = MonitoringSystem(
            table, get_metric("average"), num_monitors=2,
            algorithm="overlapping", budget=budget,
        )
        system.train(history)
        errors[budget] = system.run(live, window_width=10.0).mean_error
    assert errors[80] <= errors[5] + 1e-9


def test_run_before_train_rejected(workload):
    table, _history, live = workload
    system = MonitoringSystem(table, get_metric("rms"))
    with pytest.raises(RuntimeError):
        system.run(live, window_width=5.0)


def test_monitor_count_validated(workload):
    table, _h, _l = workload
    with pytest.raises(ValueError):
        MonitoringSystem(table, get_metric("rms"), num_monitors=0)


def test_single_monitor_equals_exact_bucket_counts(workload):
    """With one monitor, merged histograms must equal the histogram of
    the whole window: splitting traffic across monitors is lossless."""
    table, history, live = workload
    sys1 = MonitoringSystem(table, get_metric("rms"), num_monitors=1,
                            algorithm="overlapping", budget=30)
    sys3 = MonitoringSystem(table, get_metric("rms"), num_monitors=3,
                            algorithm="overlapping", budget=30)
    sys1.train(history)
    sys3.train(history)
    r1 = sys1.run(live, window_width=20.0)
    r3 = sys3.run(live, window_width=20.0)
    assert r1.windows[0].error == pytest.approx(r3.windows[0].error, rel=1e-9)


def test_zero_tuple_window_keeps_uid_dtype(workload):
    """Regression: a tumbling window with no tuples must decode cleanly,
    with the merged UID array staying integer-typed (an implicit
    ``np.empty(0)`` is float64 and breaks downstream lookups)."""
    table, history, _live = workload
    system = MonitoringSystem(
        table, get_metric("rms"), num_monitors=1,
        algorithm="lpm_greedy", budget=30,
    )
    system.train(history)
    # Two bursts separated by a silent gap: the middle window is empty.
    uids = history.uids[:40]
    ts = np.concatenate([
        np.linspace(0.0, 0.9, 20),     # window 0
        np.linspace(2.0, 2.9, 20),     # window 2; window 1 is silent
    ])
    report = system.run(Trace(ts, uids), window_width=1.0)
    assert len(report.windows) == 3
    empty = report.windows[1]
    assert empty.tuples == 0
    assert empty.error == 0.0
    assert np.isfinite(report.mean_error)


class TestCompressionRatio:
    def test_nothing_sent_is_zero(self):
        from repro.streams.system import SystemReport

        assert SystemReport().compression_ratio == 0.0

    def test_ratio_when_traffic_flowed(self):
        from repro.streams.system import SystemReport

        report = SystemReport(
            function_bytes=100, upstream_bytes=400, raw_bytes=10_000
        )
        assert report.compression_ratio == pytest.approx(20.0)
