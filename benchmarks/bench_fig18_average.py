"""Figure 18: average (mean absolute) error vs. number of buckets.

Paper claim (Section 5.1.2): the greedy heuristic again produces the
lowest error, with V-Optimal and the quantized heuristic close behind;
the gap to nonoverlapping and end-biased histograms stays wide.
"""

from repro.algorithms import OverlappingDP, build_overlapping

from figlib import figure_series, report_figure
from workloads import BUDGETS, figure_workload, metric_for

METRIC = "average"


def test_fig18_series(benchmark):
    wl = figure_workload()
    metric = metric_for(METRIC, wl)
    b_max = max(BUDGETS)

    def construct():
        return build_overlapping(wl.hierarchy, metric, b_max)

    benchmark.pedantic(construct, rounds=1, iterations=1)
    report_figure("fig18", METRIC)
    series = figure_series(METRIC)
    for s, curve in series.items():
        assert curve[max(BUDGETS)] <= curve[min(BUDGETS)] + 1e-9, s
    mid = 50
    assert series["greedy"][mid] <= series["nonoverlapping"][mid]
    assert series["greedy"][mid] <= series["end_biased"][mid]


if __name__ == "__main__":
    report_figure("fig18", METRIC)
