"""The v2 wire format: property tests, query-from-wire equivalence,
an adversarial truncation/bit-flip fuzz battery, and golden fixtures.

The contract under test, in order of appearance:

* encode -> decode is the identity for histograms (all counter modes)
  and, via the v1 codec, for functions across all three semantics;
* querying the raw v2 bytes (point counts, subtree totals, compiled
  per-group estimates, wire-level merges) is **bit-identical** to
  decoding first and querying the objects — zero tolerance, both
  stream-kernel modes;
* every corrupted or truncated variant of a valid payload raises
  ``ValueError`` — never hangs, never asserts, never returns garbage;
* the byte layout itself is pinned by golden fixtures in
  ``tests/data/`` so a format change is an intentional fixture update.
"""

import pathlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    Bucket,
    Histogram,
    LongestPrefixMatchPartitioning,
    NonoverlappingPartitioning,
    OverlappingPartitioning,
    PrunedHierarchy,
    UIDDomain,
    get_metric,
)
from repro.algorithms.construct import build
from repro.core.compiled import CompiledEstimator
from repro.core.estimate import reconstruct_estimates
from repro.core.serialize import (
    decode_function,
    encode_function,
    encode_histogram,
)
from repro.core.wire import (
    WireHistogram,
    decode_histogram_v2,
    encode_histogram_v2,
    encode_histograms_v2,
    merge_wire,
)
from repro.streams import use_stream_kernel_mode

from helpers import random_instance

DATA_DIR = pathlib.Path(__file__).parent / "data"

SEMANTICS = ["nonoverlapping", "overlapping", "longest_prefix_match"]


# -- strategies -----------------------------------------------------------

def histograms(max_height=10, float_values=False):
    """Histograms over a random domain: sorted unique node ids with
    positive counts, plus optional unmatched/total accounting."""

    @st.composite
    def strat(draw):
        height = draw(st.integers(min_value=0, max_value=max_height))
        dom = UIDDomain(height)
        node_limit = (1 << (height + 1)) - 1
        nodes = draw(
            st.lists(
                st.integers(min_value=1, max_value=node_limit),
                max_size=24, unique=True,
            )
        )
        nodes = sorted(nodes)
        if float_values:
            values = draw(
                st.lists(
                    st.floats(
                        min_value=1e-6, max_value=1e12,
                        allow_nan=False, allow_infinity=False,
                    ),
                    min_size=len(nodes), max_size=len(nodes),
                )
            )
        else:
            values = draw(
                st.lists(
                    st.integers(min_value=1, max_value=2**40),
                    min_size=len(nodes), max_size=len(nodes),
                )
            )
        unmatched = float(draw(st.integers(min_value=0, max_value=100)))
        hist = Histogram.from_arrays(
            np.asarray(nodes, dtype=np.int64),
            np.asarray(values, dtype=np.float64),
            unmatched=unmatched,
            total=float(np.sum(np.asarray(values, dtype=np.float64)))
            + unmatched,
        )
        return dom, hist

    return strat()


# -- round-trip identity --------------------------------------------------

class TestRoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(histograms(), st.sampled_from(SEMANTICS))
    def test_integer_roundtrip_identity(self, case, semantics):
        dom, hist = case
        data = encode_histogram_v2(hist, dom, semantics=semantics)
        out = decode_histogram_v2(data)
        assert np.array_equal(out.nodes, hist.nodes)
        assert np.array_equal(out.values, hist.values)
        assert out.unmatched == hist.unmatched
        assert out.total == hist.total
        view = WireHistogram(data)
        assert view.semantics == semantics
        assert view.height == dom.height

    @settings(max_examples=80, deadline=None)
    @given(histograms(float_values=True))
    def test_float64_roundtrip_identity(self, case):
        dom, hist = case
        data = encode_histogram_v2(hist, dom)
        view = WireHistogram(data)
        if len(hist) and not np.all(hist.values == np.floor(hist.values)):
            assert view.float_counters
        out = view.to_histogram()
        assert np.array_equal(out.nodes, hist.nodes)
        assert np.array_equal(out.values, hist.values)
        assert out.unmatched == hist.unmatched
        assert out.total == hist.total

    @pytest.mark.parametrize("mode", ["u8", "u16", "u32", "u64", "float64"])
    def test_explicit_counter_modes(self, mode):
        dom = UIDDomain(4)
        hist = Histogram({1: 9.0, dom.node(3, 2): 250.0}, total=259.0)
        data = encode_histogram_v2(hist, dom, counters=mode)
        out = decode_histogram_v2(data)
        assert out.counts == hist.counts

    def test_zero_buckets(self):
        dom = UIDDomain(6)
        hist = Histogram({})
        view = WireHistogram(encode_histogram_v2(hist, dom))
        assert len(view) == 0
        assert view.total == 0.0
        assert view.count(1) == 0.0

    def test_one_bucket(self):
        dom = UIDDomain(6)
        hist = Histogram({dom.node(6, 63): 7.0}, total=7.0)
        view = WireHistogram(encode_histogram_v2(hist, dom))
        assert view.count(dom.node(6, 63)) == 7.0
        assert view.to_histogram().counts == hist.counts

    def test_height_zero_domain(self):
        dom = UIDDomain(0)
        hist = Histogram({1: 3.0}, total=3.0)
        out = decode_histogram_v2(encode_histogram_v2(hist, dom))
        assert out.counts == {1: 3.0}

    def test_auto_picks_narrow_counters(self):
        dom = UIDDomain(8)
        small = encode_histogram_v2(Histogram({1: 3.0}, total=3.0), dom)
        wide = encode_histogram_v2(
            Histogram({1: float(2**33)}, total=float(2**33)), dom
        )
        assert WireHistogram(small).stride == 1
        assert WireHistogram(wide).stride == 8
        assert len(small) < len(wide)

    def test_overflow_and_nonintegral_rejected(self):
        dom = UIDDomain(4)
        with pytest.raises(ValueError):
            encode_histogram_v2(
                Histogram({1: 300.0}), dom, counters="u8"
            )
        with pytest.raises(ValueError):
            encode_histogram_v2(
                Histogram({1: 2.5}), dom, counters="u32"
            )
        with pytest.raises(ValueError):
            encode_histogram_v2(Histogram({1: 1.0}), dom, counters="u7")
        with pytest.raises(ValueError):
            encode_histogram_v2(Histogram({1: 1.0}), dom, semantics="x")

    def test_v1_rejects_nonintegral_counts(self):
        # Satellite fix: int(round(...)) used to silently corrupt the
        # weighted-values pipeline; now it is a loud error.
        dom = UIDDomain(4)
        with pytest.raises(ValueError, match="not an integer"):
            encode_histogram(Histogram({1: 2.5}), dom)

    @pytest.mark.parametrize(
        "cls",
        [
            NonoverlappingPartitioning,
            OverlappingPartitioning,
            LongestPrefixMatchPartitioning,
        ],
    )
    def test_function_roundtrip_all_semantics(self, cls):
        dom = UIDDomain(6)
        if cls is NonoverlappingPartitioning:
            buckets = [Bucket(dom.node(1, 0)), Bucket(dom.node(1, 1))]
        else:
            buckets = [
                Bucket(1),
                Bucket(dom.node(2, 3)),
                Bucket(
                    dom.node(2, 1),
                    sparse_group_node=dom.node(5, 0b01011),
                ),
            ]
        fn = cls(dom, buckets)
        out = decode_function(encode_function(fn))
        assert type(out) is cls
        assert [b.node for b in out.buckets] == [b.node for b in fn.buckets]
        assert [b.sparse_group_node for b in out.buckets] == [
            b.sparse_group_node for b in fn.buckets
        ]


# -- querying the bytes ---------------------------------------------------

class TestQueryFromWire:
    @settings(max_examples=60, deadline=None)
    @given(histograms())
    def test_point_counts_match_decoded(self, case):
        dom, hist = case
        view = WireHistogram(encode_histogram_v2(hist, dom))
        decoded = view.to_histogram()
        probes = list(hist.nodes.tolist()) + [
            1, (1 << (dom.height + 1)) - 1
        ]
        for node in probes:
            assert view.count(node) == decoded.get(node)

    @settings(max_examples=60, deadline=None)
    @given(histograms(max_height=6))
    def test_subtree_totals_match_naive_sum(self, case):
        dom, hist = case
        view = WireHistogram(encode_histogram_v2(hist, dom))
        limit = 1 << (dom.height + 1)
        probes = [n for n in [1, 2, 3] if n < limit]
        for anchor in probes + hist.nodes.tolist()[:4]:
            expected = 0.0
            for node, value in zip(
                hist.nodes.tolist(), hist.values.tolist()
            ):
                if UIDDomain.is_ancestor(anchor, node) or node == anchor:
                    expected += value
            assert view.subtree_total(anchor) == expected

    @settings(max_examples=40, deadline=None)
    @given(st.lists(histograms(max_height=5), min_size=1, max_size=4))
    def test_wire_merge_bit_identical_to_object_merge(self, cases):
        height = max(dom.height for dom, _ in cases)
        dom = UIDDomain(height)
        hists = [h for _, h in cases]
        payloads = [encode_histogram_v2(h, dom) for h in hists]
        merged_wire = WireHistogram(merge_wire(payloads)).to_histogram()
        merged_obj = Histogram.merge(hists)
        assert np.array_equal(merged_wire.nodes, merged_obj.nodes)
        assert np.array_equal(merged_wire.values, merged_obj.values)
        assert merged_wire.unmatched == merged_obj.unmatched
        assert merged_wire.total == merged_obj.total

    def test_pairwise_merge_api(self):
        dom = UIDDomain(5)
        a = Histogram({1: 2.0, 9: 5.0}, total=7.0)
        b = Histogram({9: 1.0, 40: 3.0}, total=4.0)
        va = WireHistogram(encode_histogram_v2(a, dom))
        vb = WireHistogram(encode_histogram_v2(b, dom))
        merged = WireHistogram(va.merge(vb))
        assert merged.count(9) == 6.0
        assert merged.count(40) == 3.0
        assert merged.total == 11.0

    def test_merge_rejects_mismatched_payloads(self):
        a = encode_histogram_v2(Histogram({1: 1.0}), UIDDomain(4))
        b = encode_histogram_v2(Histogram({1: 1.0}), UIDDomain(5))
        c = encode_histogram_v2(
            Histogram({1: 1.0}), UIDDomain(4), semantics="overlapping"
        )
        with pytest.raises(ValueError):
            merge_wire([a, b])
        with pytest.raises(ValueError):
            merge_wire([a, c])
        with pytest.raises(ValueError):
            merge_wire([])

    @pytest.mark.parametrize("mode", ["fast", "naive"])
    @pytest.mark.parametrize("seed", range(4))
    def test_estimates_from_wire_bit_identical(self, mode, seed):
        """Compiled gathers over the raw buffer == naive reference over
        the decoded object, zero tolerance, every algorithm output."""
        dom, table, counts = random_instance(seed, height_range=(3, 6))
        hierarchy = PrunedHierarchy(table, counts)
        fn = build(
            "lpm_greedy", hierarchy, get_metric("rms"), 6
        ).function_at(6)
        rng = np.random.default_rng(seed + 100)
        uids = rng.integers(0, dom.num_uids, 5000)
        hist = fn.build_histogram(uids)
        view = WireHistogram(
            encode_histogram_v2(hist, dom, semantics=fn.semantics)
        )
        reference = reconstruct_estimates(
            table, fn, view.to_histogram()
        )
        with use_stream_kernel_mode(mode):
            from_wire = CompiledEstimator.for_pair(table, fn).estimate(view)
        assert np.array_equal(from_wire, reference)


# -- adversarial inputs ---------------------------------------------------

def _sample_payloads():
    dom = UIDDomain(8)
    return [
        encode_histogram_v2(Histogram({}), dom),
        encode_histogram_v2(Histogram({1: 3.0}, total=3.0), dom),
        encode_histogram_v2(
            Histogram(
                {3: 1.0, 17: 260.0, 300: 70000.0},
                unmatched=2.0,
                total=70263.0,
            ),
            dom,
            semantics="longest_prefix_match",
        ),
        encode_histogram_v2(
            Histogram({5: 1.25, 80: 2.5}, total=3.75), dom
        ),
    ]


class TestFuzz:
    @pytest.mark.parametrize("payload", _sample_payloads())
    def test_every_truncation_rejected(self, payload):
        for cut in range(len(payload)):
            with pytest.raises(ValueError):
                WireHistogram(payload[:cut])

    @pytest.mark.parametrize("payload", _sample_payloads())
    def test_every_single_bit_flip_rejected(self, payload):
        for i in range(len(payload)):
            for bit in range(8):
                corrupted = bytearray(payload)
                corrupted[i] ^= 1 << bit
                with pytest.raises(ValueError):
                    WireHistogram(bytes(corrupted))

    @pytest.mark.parametrize("payload", _sample_payloads())
    def test_trailing_garbage_rejected(self, payload):
        with pytest.raises(ValueError):
            WireHistogram(payload + b"\x00")

    @settings(max_examples=150, deadline=None)
    @given(st.binary(max_size=64))
    def test_random_bytes_never_crash(self, blob):
        """Arbitrary input either parses (it would need a valid CRC) or
        raises ValueError — nothing else escapes."""
        try:
            WireHistogram(blob)
        except ValueError:
            pass

    @settings(max_examples=60, deadline=None)
    @given(
        histograms(max_height=6),
        st.data(),
    )
    def test_property_corruption_rejected(self, case, data):
        dom, hist = case
        payload = encode_histogram_v2(hist, dom)
        i = data.draw(
            st.integers(min_value=0, max_value=len(payload) - 1)
        )
        bit = data.draw(st.integers(min_value=0, max_value=7))
        corrupted = bytearray(payload)
        corrupted[i] ^= 1 << bit
        with pytest.raises(ValueError):
            WireHistogram(bytes(corrupted))


# -- golden fixtures ------------------------------------------------------

def _golden_cases():
    dom = UIDDomain(8)
    return {
        "v2_empty.bin": (
            encode_histogram_v2(Histogram({}), dom),
            Histogram({}),
        ),
        "v2_small_u8.bin": (
            encode_histogram_v2(
                Histogram({1: 9.0, 17: 250.0}, total=259.0), dom
            ),
            Histogram({1: 9.0, 17: 250.0}, total=259.0),
        ),
        "v2_lpm_totals_u32.bin": (
            encode_histogram_v2(
                Histogram(
                    {3: 1.0, 17: 260.0, 300: 70000.0},
                    unmatched=2.0,
                    total=70263.0,
                ),
                dom,
                semantics="longest_prefix_match",
            ),
            Histogram(
                {3: 1.0, 17: 260.0, 300: 70000.0},
                unmatched=2.0,
                total=70263.0,
            ),
        ),
        "v2_float64.bin": (
            encode_histogram_v2(
                Histogram({5: 1.25, 80: 2.5}, total=3.75), dom
            ),
            Histogram({5: 1.25, 80: 2.5}, total=3.75),
        ),
    }


class TestGoldenFixtures:
    @pytest.mark.parametrize("name", sorted(_golden_cases()))
    def test_fixture_bytes_pinned(self, name):
        """Re-encoding the fixture's histogram must reproduce the
        checked-in bytes exactly; decoding them must reproduce the
        histogram.  A mismatch means the wire layout changed — update
        the fixture only if that was intentional."""
        encoded, hist = _golden_cases()[name]
        fixture = (DATA_DIR / name).read_bytes()
        assert encoded == fixture, (
            f"{name}: encoder output no longer matches the checked-in "
            f"wire bytes"
        )
        out = decode_histogram_v2(fixture)
        assert out.counts == hist.counts
        assert out.unmatched == hist.unmatched
        assert out.total == hist.total


# -- k-way shard merge properties -----------------------------------------

def histogram_fleets(max_height=8, max_shards=5):
    """(domain, [histograms...]) over ONE shared domain — the shape of
    a shard fleet reporting one window.  Shards may be empty (a quiet
    monitor), counters mix integral and float64 modes, and every value
    is a multiple of 1/16 well inside float64's exact range, so
    addition is associative and the merge contract below is exact
    byte-identity, not approximate equality.
    """

    @st.composite
    def strat(draw):
        height = draw(st.integers(min_value=0, max_value=max_height))
        dom = UIDDomain(height)
        node_limit = (1 << (height + 1)) - 1
        n_shards = draw(st.integers(min_value=2, max_value=max_shards))
        fleet = []
        for _ in range(n_shards):
            nodes = sorted(
                draw(
                    st.lists(
                        st.integers(min_value=1, max_value=node_limit),
                        max_size=12, unique=True,
                    )
                )
            )
            sixteenths = draw(
                st.lists(
                    st.integers(min_value=1, max_value=2**40),
                    min_size=len(nodes), max_size=len(nodes),
                )
            )
            if draw(st.booleans()):
                values = [v / 16.0 for v in sixteenths]  # float64 mode
            else:
                values = [float(v) for v in sixteenths]  # integral mode
            unmatched = float(draw(st.integers(min_value=0, max_value=50)))
            values_arr = np.asarray(values, dtype=np.float64)
            fleet.append(
                Histogram.from_arrays(
                    np.asarray(nodes, dtype=np.int64),
                    values_arr,
                    unmatched=unmatched,
                    total=float(np.sum(values_arr)) + unmatched,
                )
            )
        return dom, fleet

    return strat()


class TestShardMergeProperties:
    """The serving fan-in merges shard payloads in whatever order and
    grouping the workers deliver them; these properties pin that the
    merged payload bytes cannot depend on either."""

    @settings(max_examples=80, deadline=None)
    @given(histogram_fleets(), st.sampled_from(SEMANTICS), st.data())
    def test_shard_order_permutation_is_byte_identical(
        self, case, semantics, data
    ):
        dom, fleet = case
        payloads = [
            encode_histogram_v2(h, dom, semantics=semantics) for h in fleet
        ]
        merged = merge_wire(payloads)
        shuffled = data.draw(st.permutations(payloads))
        assert merge_wire(shuffled) == merged

    @settings(max_examples=80, deadline=None)
    @given(histogram_fleets(), st.sampled_from(SEMANTICS), st.data())
    def test_associative_grouping_is_byte_identical(
        self, case, semantics, data
    ):
        """Left-fold, flat k-way, and split-in-two tree merges must
        all produce the same payload bytes."""
        dom, fleet = case
        payloads = [
            encode_histogram_v2(h, dom, semantics=semantics) for h in fleet
        ]
        flat = merge_wire(payloads)
        cut = data.draw(
            st.integers(min_value=1, max_value=len(payloads) - 1)
        )
        tree = merge_wire(
            [merge_wire(payloads[:cut]), merge_wire(payloads[cut:])]
        )
        assert tree == flat
        fold = payloads[0]
        for payload in payloads[1:]:
            fold = merge_wire([fold, payload])
        assert fold == flat

    @settings(max_examples=40, deadline=None)
    @given(histogram_fleets(max_shards=3), st.sampled_from(SEMANTICS))
    def test_empty_shards_are_merge_neutral(self, case, semantics):
        dom, fleet = case
        empty = encode_histogram_v2(Histogram({}), dom, semantics=semantics)
        payloads = [
            encode_histogram_v2(h, dom, semantics=semantics) for h in fleet
        ]
        with_empties = [empty] + payloads + [empty]
        assert merge_wire(with_empties) == merge_wire(payloads)


# -- batched monitor-side encode ------------------------------------------

def histogram_batches(max_height=8, max_batch=8):
    """(domain, [histograms...]) over one domain for the batched
    encoder: arbitrary finite positive counters (not just exact ones —
    batched vs scalar is the same arithmetic, so identity must hold
    for any encodable input), empty histograms, and non-derivable
    explicit totals mixed in."""

    @st.composite
    def strat(draw):
        height = draw(st.integers(min_value=0, max_value=max_height))
        dom = UIDDomain(height)
        node_limit = (1 << (height + 1)) - 1
        batch = []
        for _ in range(draw(st.integers(min_value=0, max_value=max_batch))):
            nodes = sorted(
                draw(
                    st.lists(
                        st.integers(min_value=1, max_value=node_limit),
                        max_size=10, unique=True,
                    )
                )
            )
            if draw(st.booleans()):
                values = draw(
                    st.lists(
                        st.floats(
                            min_value=1e-6, max_value=1e15,
                            allow_nan=False, allow_infinity=False,
                        ),
                        min_size=len(nodes), max_size=len(nodes),
                    )
                )
            else:
                values = [
                    float(v) for v in draw(
                        st.lists(
                            st.integers(min_value=1, max_value=2**63 - 1),
                            min_size=len(nodes), max_size=len(nodes),
                        )
                    )
                ]
            unmatched = float(draw(st.integers(min_value=0, max_value=20)))
            values_arr = np.asarray(values, dtype=np.float64)
            total = float(np.sum(values_arr)) + unmatched
            if draw(st.booleans()):
                total += 1.0  # force the explicit-totals section
            batch.append(
                Histogram.from_arrays(
                    np.asarray(nodes, dtype=np.int64),
                    values_arr,
                    unmatched=unmatched,
                    total=total,
                )
            )
        return dom, batch

    return strat()


class TestBatchedEncode:
    @settings(max_examples=100, deadline=None)
    @given(histogram_batches(), st.sampled_from(SEMANTICS))
    def test_batched_encode_matches_scalar_bytes(self, case, semantics):
        """One vectorized encode pass over a mixed batch must emit the
        exact bytes of one scalar encode per histogram — the sharded
        Monitor's batched send path may never change the wire."""
        dom, batch = case
        batched = encode_histograms_v2(batch, dom, semantics=semantics)
        scalar = [
            encode_histogram_v2(h, dom, semantics=semantics) for h in batch
        ]
        assert batched == scalar

    def test_batched_encode_empty_list(self):
        assert encode_histograms_v2([], UIDDomain(4)) == []
