"""The sharded serving layer: report identity, fan-in, caches, tenants.

The load-bearing contract is **bit-identity**: a
:class:`ShardedMonitoringSystem` run must produce a ``SystemReport``
that compares dataclass-equal to the serial
:class:`~repro.streams.MonitoringSystem` for the same seeds — clean,
under a seeded fault mix, weighted, and in both stream kernel modes —
because the shard prefetch only relocates pure per-monitor work and
the fan-in decoder only removes wire-format glue.  Everything else
(shared caches, tenant admission, spec parsing, observability labels)
is tested around that invariant.
"""

import dataclasses
import io
import json
import threading

import numpy as np
import pytest

from repro import UIDDomain, get_metric
from repro.data import TrafficModel, generate_subnet_table
from repro.data.traffic import generate_timestamped_trace
from repro.obs import EventJournal, MetricsRegistry, use_journal, use_registry
from repro.serving import (
    FanInControlCenter,
    ServingEngine,
    SharedServingCache,
    ShardedMonitoringSystem,
    TenantSpec,
)
from repro.serving.sharded import _pack_messages, _unpack_messages
from repro.streams import FaultModel, MonitoringSystem, Trace
from repro.streams.kernels import use_stream_kernel_mode
from repro.streams.monitor import Monitor
from repro.streams.query import exact_group_counts, exact_group_counts_batched

FAULTS = dict(
    drop=0.05, duplicate=0.03, delay=0.04, max_delay_windows=3,
    reorder=0.1, crash=0.002, install_drop=0.1, seed=23,
)


@pytest.fixture(scope="module")
def workload():
    table = generate_subnet_table(UIDDomain(10), seed=2)
    ts, uids = generate_timestamped_trace(
        table, 8000, duration=40.0, seed=4,
        model=TrafficModel(active_fraction=0.15, zipf_exponent=1.2),
    )
    trace = Trace(ts, uids)
    return table, trace.slice_time(0, 20), trace.slice_time(20, 40)


def _systems(table, history, shards, **kwargs):
    serial = MonitoringSystem(
        table, get_metric("rms"), num_monitors=3, budget=40, **kwargs
    )
    sharded = ShardedMonitoringSystem(
        table, get_metric("rms"), num_monitors=3, shards=shards,
        budget=40, **kwargs,
    )
    serial.train(history)
    sharded.train(history)
    return serial, sharded


# -- report identity ------------------------------------------------------

class TestReportIdentity:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_clean_run_identical(self, workload, shards):
        table, history, live = workload
        serial, sharded = _systems(table, history, shards)
        with sharded:
            expected = serial.run(live, window_width=4.0)
            actual = sharded.run(live, window_width=4.0)
        assert actual == expected
        assert sharded.prefetch_misses == 0
        assert sharded.prefetch_hits > 0

    @pytest.mark.parametrize("shards", [2, 4])
    def test_faulty_run_identical(self, workload, shards):
        table, history, live = workload
        serial, sharded = _systems(table, history, shards)
        with sharded:
            expected = serial.run(
                live, window_width=4.0, faults=FaultModel(**FAULTS)
            )
            actual = sharded.run(
                live, window_width=4.0, faults=FaultModel(**FAULTS)
            )
        assert actual == expected
        # Crashes must replay identically too, not just average out.
        assert actual.monitor_crashes == expected.monitor_crashes

    def test_weighted_run_identical(self, workload):
        table, history, live = workload
        rng = np.random.default_rng(9)
        history = Trace(
            history.timestamps, history.uids,
            rng.uniform(1.0, 8.0, size=history.uids.size),
        )
        live = Trace(
            live.timestamps, live.uids,
            rng.uniform(1.0, 8.0, size=live.uids.size),
        )
        serial, sharded = _systems(table, history, 2)
        with sharded:
            expected = serial.run(live, window_width=4.0)
            actual = sharded.run(live, window_width=4.0)
        assert actual == expected
        assert sharded.prefetch_misses == 0

    def test_naive_kernel_mode_identical(self, workload):
        table, history, live = workload
        with use_stream_kernel_mode("naive"):
            serial, sharded = _systems(table, history, 2)
            with sharded:
                expected = serial.run(live, window_width=4.0)
                actual = sharded.run(live, window_width=4.0)
        assert actual == expected

    def test_split_seed_respected(self, workload):
        table, history, live = workload
        serial, sharded = _systems(table, history, 2)
        with sharded:
            expected = serial.run(live, window_width=4.0, split_seed=7)
            actual = sharded.run(live, window_width=4.0, split_seed=7)
        assert actual == expected

    def test_pool_reused_across_runs(self, workload):
        """Consecutive runs reuse one forked worker pool and stay
        identical to the serial system run-for-run (channel byte
        totals are lifetime-cumulative on both sides)."""
        table, history, live = workload
        serial, sharded = _systems(table, history, 2)
        with sharded:
            first = sharded.run(live, window_width=4.0)
            pool = sharded._pool
            second = sharded.run(live, window_width=4.0)
            assert sharded._pool is pool
        assert first == serial.run(live, window_width=4.0)
        assert second == serial.run(live, window_width=4.0)
        assert sharded._pool is None  # closed by the context manager

    def test_poisoned_prefetch_falls_back_inline(self, workload):
        """Stale prefetched messages (wrong function version) must be
        rebuilt inline — correctness never depends on the prefetch."""
        table, history, live = workload
        serial, sharded = _systems(table, history, 2)
        expected = serial.run(live, window_width=4.0)
        original = sharded._prefetch

        def poisoned(live, width, seed):
            original(live, width, seed)
            for key in list(sharded._prefetched)[:7]:
                message = sharded._prefetched[key]
                sharded._prefetched[key] = dataclasses.replace(
                    message, function_version=message.function_version - 1
                )

        sharded._prefetch = poisoned
        with sharded:
            actual = sharded.run(live, window_width=4.0)
        assert actual == expected
        assert sharded.prefetch_misses == 7

    def test_constructor_validation(self, workload):
        table, _history, _live = workload
        with pytest.raises(ValueError, match="shards"):
            ShardedMonitoringSystem(table, get_metric("rms"), shards=0)
        with pytest.raises(ValueError, match="wire_format"):
            ShardedMonitoringSystem(
                table, get_metric("rms"), shards=2, wire_format="v1"
            )


# -- fan-in decode --------------------------------------------------------

class TestFanIn:
    def test_merge_matches_serial_wire_path(self, workload):
        """The lean fan-in (merge_views on message histograms, no
        re-encode) must produce the same merged histogram and the same
        estimates as the serial parse/merge_wire/re-parse path."""
        table, history, live = workload
        serial, sharded = _systems(table, history, 2)
        cc_serial = serial.control_center
        cc_fanin = sharded.control_center
        assert isinstance(cc_fanin, FanInControlCenter)
        monitor = Monitor("m0", wire_format="v2")
        monitor.install_function(
            cc_fanin.function, cc_fanin.function_version
        )
        shares = live.split(3, seed=0)
        usable = [
            monitor.process_window(0, share.uids) for share in shares
        ]
        merged_fast, est_fast = cc_fanin._merge_and_estimate(usable)
        merged_ref, est_ref = cc_serial._merge_and_estimate(usable)
        assert np.array_equal(merged_fast.nodes, merged_ref.nodes)
        assert np.array_equal(merged_fast.values, merged_ref.values)
        assert merged_fast.unmatched == merged_ref.unmatched
        assert merged_fast.total == merged_ref.total
        assert np.array_equal(est_fast, est_ref)

    def test_empty_usable_defers_to_base(self, workload):
        table, history, _live = workload
        _serial, sharded = _systems(table, history, 2)
        merged, estimates = sharded.control_center._merge_and_estimate([])
        assert len(merged) == 0
        assert estimates is None or np.all(estimates == 0)

    def test_pack_unpack_round_trip(self, workload):
        table, history, live = workload
        _serial, sharded = _systems(table, history, 2)
        cc = sharded.control_center
        monitor = Monitor("m0", wire_format="v2")
        monitor.install_function(cc.function, cc.function_version)
        shares = live.split(4, seed=1)
        messages = monitor.process_windows(
            list(range(4)), [s.uids for s in shares]
        )
        packed = _pack_messages("m0", messages)
        name, out = _unpack_messages(packed, cc.function_version)
        assert name == "m0"
        assert len(out) == len(messages)
        for original, restored in zip(messages, out):
            assert restored.monitor == original.monitor
            assert restored.window_index == original.window_index
            assert restored.function_version == original.function_version
            assert restored.payload == original.payload
            assert np.array_equal(
                restored.histogram.nodes, original.histogram.nodes
            )
            assert np.array_equal(
                restored.histogram.values, original.histogram.values
            )
            assert restored.histogram.unmatched == original.histogram.unmatched
            assert restored.histogram.total == original.histogram.total
            # Reconstructed histograms must behave as full objects.
            assert restored.histogram.counts == original.histogram.counts

    def test_pack_unpack_empty(self):
        packed = _pack_messages("m0", [])
        name, out = _unpack_messages(packed, 3)
        assert name == "m0"
        assert out == []


# -- batched ground truth -------------------------------------------------

class TestBatchedTruth:
    def test_matches_per_window_counts(self, workload):
        table, _history, live = workload
        windows = [s.uids for s in live.split(5, seed=3)]
        batched = exact_group_counts_batched(table, windows)
        for row, uids in zip(batched, windows):
            assert np.array_equal(row, exact_group_counts(table, uids))

    def test_matches_per_window_weighted(self, workload):
        table, _history, live = workload
        rng = np.random.default_rng(11)
        windows = [s.uids for s in live.split(4, seed=5)]
        values = [rng.uniform(0.5, 4.0, size=w.size) for w in windows]
        batched = exact_group_counts_batched(table, windows, values)
        for row, uids, vals in zip(batched, windows, values):
            assert np.array_equal(
                row, exact_group_counts(table, uids, values=vals)
            )


# -- shared cache ---------------------------------------------------------

class TestSharedServingCache:
    def test_canonical_table_collapses_equal_tables(self):
        a = generate_subnet_table(UIDDomain(8), seed=2)
        b = generate_subnet_table(UIDDomain(8), seed=2)
        c = generate_subnet_table(UIDDomain(8), seed=3)
        cache = SharedServingCache()
        assert cache.canonical_table(a) is a
        assert cache.canonical_table(b) is a
        assert cache.canonical_table(c) is c

    def test_function_cache_lru(self):
        cache = SharedServingCache(max_functions=2)
        cache.put_function("t", "r1", "f1")
        cache.put_function("t", "r2", "f2")
        assert cache.get_function("t", "r1") == "f1"
        cache.put_function("t", "r3", "f3")  # evicts r2 (LRU)
        assert cache.get_function("t", "r2") is None
        assert cache.get_function("t", "r1") == "f1"
        assert cache.get_function("t", "r3") == "f3"
        stats = cache.stats()
        assert stats["function_hits"] == 3
        assert stats["function_misses"] == 1
        assert stats["functions"] == 2

    def test_cross_tenant_function_reuse(self, workload):
        """The second tenant over the same table and rebuild inputs
        must reuse the first tenant's finished function."""
        table, history, live = workload
        cache = SharedServingCache()
        with ServingEngine(
            table, get_metric("rms"), "alpha;beta", shards=2, cache=cache,
            num_monitors=2,
        ) as engine:
            engine.run(history, live, window_width=5.0)
        assert cache.stats()["function_hits"] >= 1
        assert cache.stats()["functions"] == 1


# -- tenant specs ---------------------------------------------------------

class TestTenantSpec:
    def test_parse_full(self):
        spec = TenantSpec.parse(
            "acme:algorithm=nonoverlapping,budget=64,bytes=4096,seed=3"
        )
        assert spec == TenantSpec(
            name="acme", algorithm="nonoverlapping", budget=64,
            byte_budget=4096, seed=3,
        )

    def test_parse_defaults(self):
        spec = TenantSpec.parse("acme")
        assert spec.name == "acme"
        assert spec.byte_budget is None

    def test_parse_many(self):
        specs = TenantSpec.parse_many("a:budget=10; b ;c:bytes=64")
        assert [s.name for s in specs] == ["a", "b", "c"]

    @pytest.mark.parametrize("bad", [
        "", ":budget=10", "a:frob=1", "a:budget=x", "a:budget", "a;a",
    ])
    def test_parse_errors(self, bad):
        with pytest.raises(ValueError):
            TenantSpec.parse_many(bad)


# -- the serving engine ---------------------------------------------------

class TestServingEngine:
    def test_admission_under_capacity(self, workload):
        table, history, live = workload
        sink = io.StringIO()
        registry = MetricsRegistry()
        with use_registry(registry), use_journal(EventJournal(sink)):
            with ServingEngine(
                table, get_metric("rms"),
                "a:bytes=600;b:bytes=500;c:bytes=600;d",
                capacity_bytes=1200, num_monitors=2,
            ) as engine:
                results = engine.run(history, live, window_width=5.0)
        assert [s.name for s in engine.admitted] == ["a", "b"]
        assert results["a"].admitted and results["b"].admitted
        assert not results["c"].admitted
        assert "capacity exceeded" in results["c"].reason
        assert not results["d"].admitted
        assert "no byte budget" in results["d"].reason
        assert results["c"].report is None
        events = [json.loads(line) for line in sink.getvalue().splitlines()]
        kinds = [e["event"] for e in events]
        assert kinds.count("tenant.admitted") == 2
        assert kinds.count("tenant.rejected") == 2
        assert kinds.count("tenant.report") == 2
        # Metric samples carry the tenant label.
        windows_a = registry.get(
            "counter", "serving.tenant.windows", tenant="a"
        )
        assert windows_a is not None and windows_a.value > 0
        assert registry.get(
            "counter", "serving.tenant.windows", tenant="c"
        ) is None

    def test_over_budget_flagged(self, workload):
        table, history, live = workload
        with ServingEngine(
            table, get_metric("rms"), "tiny:bytes=10",
            capacity_bytes=100, num_monitors=2,
        ) as engine:
            results = engine.run(history, live, window_width=5.0)
        report = results["tiny"]
        assert report.admitted
        assert report.bytes_used > 10
        assert report.over_budget

    def test_sharded_tenants_match_serial_tenants(self, workload):
        table, history, live = workload
        with ServingEngine(
            table, get_metric("rms"), "a;b", shards=2, num_monitors=2,
        ) as sharded_engine:
            sharded_results = sharded_engine.run(
                history, live, window_width=5.0
            )
        serial_engine = ServingEngine(
            table, get_metric("rms"), "a;b", shards=1, num_monitors=2,
        )
        serial_results = serial_engine.run(history, live, window_width=5.0)
        for name in ("a", "b"):
            assert (
                sharded_results[name].report == serial_results[name].report
            )

    def test_shard_metrics_and_journal_labels(self, workload):
        table, history, live = workload
        sink = io.StringIO()
        registry = MetricsRegistry()
        with use_registry(registry), use_journal(EventJournal(sink)):
            with ServingEngine(
                table, get_metric("rms"), "solo", shards=2, num_monitors=2,
            ) as engine:
                engine.run(history, live, window_width=5.0)
        for shard in ("0", "1"):
            windows = registry.get(
                "counter", "serving.shard.windows",
                shard=shard, tenant="solo",
            )
            assert windows is not None and windows.value > 0
            payload = registry.get(
                "counter", "serving.shard.payload_bytes",
                shard=shard, tenant="solo",
            )
            assert payload is not None and payload.value > 0
        prefetches = [
            json.loads(line)
            for line in sink.getvalue().splitlines()
            if json.loads(line)["event"] == "shard.prefetch"
        ]
        assert {e["shard"] for e in prefetches} == {0, 1}
        assert all(e["tenant"] == "solo" for e in prefetches)
        assert all(e["payload_bytes"] > 0 for e in prefetches)

    def test_validation(self, workload):
        table, _history, _live = workload
        with pytest.raises(ValueError):
            ServingEngine(table, get_metric("rms"), [])
        with pytest.raises(ValueError):
            ServingEngine(table, get_metric("rms"), "a", shards=0)


def test_no_worker_processes_leak(workload):
    """close() must reap the shard pool's worker processes."""
    import multiprocessing

    table, history, live = workload
    _serial, sharded = _systems(table, history, 2)
    sharded.run(live, window_width=4.0)
    assert len(multiprocessing.active_children()) >= 1
    sharded.close()
    assert multiprocessing.active_children() == []


# -- cross-process telemetry satellites -----------------------------------

class TestServingTelemetry:
    def test_prefetch_miss_counter_fires_slo_mid_run(self, workload):
        """Forced function-version mismatches must surface as
        per-window serving.prefetch.misses deltas and fire a
        prefetch_miss_rate SLO rule *during* the run."""
        from repro.obs import SLOEngine, parse_slo_spec, use_slo_engine

        table, history, live = workload
        serial, sharded = _systems(table, history, 2)
        expected = serial.run(live, window_width=4.0)
        original = sharded._prefetch

        def poisoned(live, width, seed):
            original(live, width, seed)
            for key in list(sharded._prefetched)[:3]:
                message = sharded._prefetched[key]
                sharded._prefetched[key] = dataclasses.replace(
                    message, function_version=message.function_version - 1
                )

        sharded._prefetch = poisoned
        registry = MetricsRegistry()
        engine = SLOEngine(parse_slo_spec("prefetch_miss_rate<=0"))
        with use_registry(registry), use_slo_engine(engine), sharded:
            actual = sharded.run(live, window_width=4.0)
        # Quality-gauge fields only populate with a live registry, so
        # compare the registry-independent accounting.
        assert [
            (w.window_index, w.tuples, w.error, w.histogram_bytes)
            for w in actual.windows
        ] == [
            (w.window_index, w.tuples, w.error, w.histogram_bytes)
            for w in expected.windows
        ]
        assert sharded.prefetch_misses == 3
        misses = registry.get("counter", "serving.prefetch.misses")
        assert misses is not None and misses.value == 3
        # The counter moved inside specific windows: the per-window
        # snapshot-delta series carries the deltas.
        per_window = [
            rec["counters"].get("serving.prefetch.misses", 0)
            for rec in registry.window_series
        ]
        assert sum(per_window) == 3
        assert any(delta == 0 for delta in per_window)
        # ... and the SLO rule fired mid-run on the miss-rate signal.
        assert actual.alerts
        assert all(
            a.rule.startswith("prefetch_miss_rate") for a in actual.alerts
        )
        fired = {a.fired_window for a in actual.alerts}
        assert fired <= {
            w for w, delta in enumerate(per_window) if delta > 0
        }

    def test_cache_counters_exported(self, workload):
        """serving.cache.* counters must reflect SharedServingCache
        hits/misses, including the new canonical-table tracking."""
        table, history, live = workload
        registry = MetricsRegistry()
        with use_registry(registry):
            cache = SharedServingCache()
            with ServingEngine(
                table, get_metric("rms"),
                "alpha:budget=40;beta:budget=40",
                cache=cache, num_monitors=2,
            ) as engine:
                engine.run(history, live, window_width=4.0)
        stats = cache.stats()
        # Identical tenants: the second shares the first one's table
        # and finished function.
        assert stats["table_misses"] == 1
        assert stats["function_hits"] >= 1
        for name, key in [
            ("serving.cache.table.misses", "table_misses"),
            ("serving.cache.function.hits", "function_hits"),
            ("serving.cache.function.misses", "function_misses"),
        ]:
            child = registry.get("counter", name)
            assert child is not None and child.value == stats[key], name
        # publish_metrics is delta-idempotent: republishing with no new
        # traffic must not inflate the counters.
        cache.publish_metrics(registry)
        child = registry.get("counter", "serving.cache.function.hits")
        assert child.value == stats["function_hits"]

    def test_engine_run_report_identity_with_telemetry(self, workload):
        """Reports coming out of a telemetry-on engine run must equal
        the plain serial system's (the acceptance off/on invariant at
        the engine level)."""
        table, history, live = workload
        plain = MonitoringSystem(
            table, get_metric("rms"), num_monitors=3, budget=40
        )
        plain.train(history)
        # Scope a registry on the reference run too: quality-gauge
        # window fields only populate with one attached.
        with use_registry(MetricsRegistry()):
            expected = plain.run(live, window_width=4.0, split_seed=0)

        registry = MetricsRegistry()
        journal = EventJournal(io.StringIO())
        with use_registry(registry), use_journal(journal):
            with ServingEngine(
                table, get_metric("rms"), "alpha:budget=40",
                shards=2, num_monitors=3,
            ) as engine:
                results = engine.run(history, live, window_width=4.0)
        assert results["alpha"].report == expected
        # Tenant-labelled shard series + parent proc series landed.
        child = registry.get(
            "counter", "serving.shard.windows", shard="0", tenant="alpha"
        )
        assert child is not None and child.value > 0
        assert (
            registry.get("gauge", "proc.cpu.user_seconds", shard="parent")
            is not None
        )
