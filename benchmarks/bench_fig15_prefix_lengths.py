"""Figure 15: the subnet table's prefix-length distribution.

The paper plots, on a log scale, how many of the 1.1M WHOIS-derived
subnets have each prefix length, against the ``2^length`` maximum, with
spikes at the classful /8, /16 and /24 boundaries.  This bench
regenerates the (scaled) distribution from the synthetic WHOIS table
and verifies its structural properties: full coverage, a wide length
range, and locally-elevated classful spikes.
"""

import numpy as np

from repro.data import generate_subnet_table, prefix_length_distribution

from workloads import figure_workload, format_table, save_series


def test_fig15_distribution(benchmark):
    wl = figure_workload()
    table = wl.table
    height = table.domain.height

    def construct():
        return generate_subnet_table(table.domain, seed=11)

    benchmark.pedantic(construct, rounds=1, iterations=1)

    dist = prefix_length_distribution(table)
    header = ["prefix_length", "num_subnets", "max_possible"]
    rows = [
        [d, dist.get(d, 0), 2 ** d] for d in range(min(dist), height + 1)
    ]
    save_series("fig15_prefix_lengths.csv", header, rows)
    print("\nfig15 (subnet prefix-length distribution)")
    print(format_table(header, rows))

    # Structural claims of Figure 15 at our scale:
    assert table.covers_domain()
    assert dist.get(height, 0) >= 1          # single-identifier subnets
    assert min(dist) <= height // 3          # short, wide allocations
    # same scaled classful depths the generator boosts
    for spike in sorted({round(height * f) for f in (0.25, 0.5, 0.75)}):
        neighbors = max(dist.get(spike - 1, 0), dist.get(spike + 1, 0))
        assert dist.get(spike, 0) > neighbors, f"no spike at /{spike}"
    # nothing exceeds the 2^length ceiling
    for d, n in dist.items():
        assert n <= 2 ** d


if __name__ == "__main__":
    wl = figure_workload()
    dist = prefix_length_distribution(wl.table)
    height = wl.table.domain.height
    rows = [[d, dist.get(d, 0), 2 ** d] for d in range(min(dist), height + 1)]
    print(format_table(["prefix_length", "num_subnets", "max_possible"], rows))
