"""Optimizing a custom distributive error metric.

The construction algorithms accept *any* error metric expressible as a
distributive aggregate (paper Section 2.2.4).  This example defines two
custom metrics and shows that histograms optimized for a metric indeed
do best under it:

* ``FalsePositiveRate`` — the fraction of silent groups the histogram
  wrongly reports as active.  Section 4.3 notes such metrics also make
  decoding faster, because fewer groups are predicted nonzero.
* ``WeightedAverageError`` — absolute error weighted toward heavy
  groups.

Run:  python examples/custom_error_metric.py
"""

import numpy as np

from repro import (
    PenaltyMetric,
    PrunedHierarchy,
    UIDDomain,
    evaluate_function,
    get_metric,
    register_metric,
)
from repro.algorithms import build_overlapping
from repro.data import TrafficModel, generate_subnet_table, generate_trace


class FalsePositiveRate(PenaltyMetric):
    """Fraction of truly-zero groups estimated as nonzero."""

    name = "false_positive_rate"
    combine = "sum"

    def penalty(self, actual: float, estimate: float) -> float:
        return 1.0 if actual == 0 and estimate > 0 else 0.0

    def penalty_array(self, actual, estimate):
        return ((actual == 0) & (estimate > 0)).astype(float)

    def finalize_total(self, total: float, count: float) -> float:
        return total / count if count else 0.0


class WeightedAverageError(PenaltyMetric):
    """Absolute error, weighted by sqrt(actual) — heavy groups matter
    more, but not quadratically as in RMS."""

    name = "weighted_average"
    combine = "sum"

    def penalty(self, actual: float, estimate: float) -> float:
        return abs(actual - estimate) * (1.0 + actual) ** 0.5

    def penalty_array(self, actual, estimate):
        return np.abs(actual - estimate) * np.sqrt(1.0 + actual)

    def finalize_total(self, total: float, count: float) -> float:
        return total / count if count else 0.0


def main() -> None:
    register_metric(FalsePositiveRate)
    register_metric(WeightedAverageError)

    domain = UIDDomain(14)
    table = generate_subnet_table(domain, seed=23)
    uids = generate_trace(table, 80_000, seed=24, model=TrafficModel())
    counts = table.counts_from_uids(uids)
    hierarchy = PrunedHierarchy(table, counts)
    budget = 32

    metrics = {
        "rms": get_metric("rms"),
        "false_positive_rate": get_metric("false_positive_rate"),
        "weighted_average": get_metric("weighted_average"),
    }

    # Build one optimal overlapping histogram per target metric ...
    functions = {
        target: build_overlapping(hierarchy, m, budget).function_at(budget)
        for target, m in metrics.items()
    }

    # ... and cross-evaluate: each histogram should win its own metric.
    print(f"{'optimized for':>22} | " + " | ".join(
        f"{name:>20}" for name in metrics
    ))
    for target, fn in functions.items():
        row = [
            evaluate_function(table, counts, fn, m) for m in metrics.values()
        ]
        print(f"{target:>22} | " + " | ".join(f"{v:>20.4f}" for v in row))

    for name, m in metrics.items():
        best = min(
            functions, key=lambda t: evaluate_function(
                table, counts, functions[t], m
            )
        )
        marker = "(itself)" if best == name else f"(by {best})"
        print(f"lowest {name}: achieved {marker}")


if __name__ == "__main__":
    main()
