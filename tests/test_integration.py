"""Integration tests: the full evaluation pipeline at reduced scale —
the same code paths the Figure 17-20 benches exercise."""

import numpy as np
import pytest

from repro import (
    PrunedHierarchy,
    UIDDomain,
    evaluate_function,
    get_metric,
)
from repro.algorithms import (
    OverlappingDP,
    build_lpm_greedy,
    build_lpm_quantized,
    build_nonoverlapping,
    build_overlapping,
)
from repro.baselines import build_end_biased, build_v_optimal
from repro.data import TrafficModel, generate_subnet_table, generate_trace


@pytest.fixture(scope="module")
def workload():
    dom = UIDDomain(14)
    table = generate_subnet_table(dom, seed=11)
    uids = generate_trace(table, 200_000, seed=12, model=TrafficModel())
    counts = table.counts_from_uids(uids)
    return table, counts, PrunedHierarchy(table, counts)


BUDGET = 30


@pytest.fixture(scope="module")
def curves(workload):
    """One mini Figure-17 style sweep (RMS, all six histogram types)."""
    table, counts, hierarchy = workload
    metric = get_metric("rms")
    dp = OverlappingDP(hierarchy, metric, 2 * BUDGET)
    out = {
        "nonoverlapping": build_nonoverlapping(hierarchy, metric, BUDGET),
        "overlapping": build_overlapping(hierarchy, metric, BUDGET),
        "greedy": build_lpm_greedy(hierarchy, metric, BUDGET, dp=dp),
        "quantized": build_lpm_quantized(
            hierarchy, metric, BUDGET, theta=1.0, beam=4
        ),
    }
    eb = build_end_biased(table, counts, BUDGET)
    vo = build_v_optimal(table, counts, BUDGET)
    return table, counts, metric, out, eb, vo


def test_all_types_produce_finite_curves(curves):
    _t, _c, _m, out, eb, vo = curves
    for name, res in out.items():
        assert np.isfinite(res.error_at(BUDGET)), name
    assert np.isfinite(eb.error(get_metric("rms"), BUDGET))
    assert np.isfinite(vo.error(get_metric("rms"), BUDGET))


def test_hierarchical_methods_beat_end_biased(curves):
    """The paper's headline: hierarchical histograms dominate end-biased
    at equal budget on skewed traffic (Figures 17-18)."""
    _t, _c, metric, out, eb, _vo = curves
    eb_err = eb.error(metric, BUDGET)
    assert out["overlapping"].error_at(BUDGET) <= eb_err
    assert out["greedy"].error_at(BUDGET) <= eb_err


def test_overlapping_beats_nonoverlapping(curves):
    _t, _c, _m, out, _eb, _vo = curves
    assert (
        out["overlapping"].error_at(BUDGET)
        <= out["nonoverlapping"].error_at(BUDGET) + 1e-9
    )


def test_optimal_dp_errors_match_pipeline(curves):
    """DP-predicted error == measured error through histograms, at the
    integration scale too."""
    table, counts, metric, out, _eb, _vo = curves
    for name in ("nonoverlapping", "overlapping"):
        res = out[name]
        fn = res.function_at(BUDGET)
        measured = evaluate_function(table, counts, fn, metric)
        assert measured == pytest.approx(res.error_at(BUDGET), abs=1e-6), name


def test_curves_monotone(curves):
    _t, _c, _m, out, _eb, _vo = curves
    for name, res in out.items():
        finite = res.curve[np.isfinite(res.curve)]
        assert np.all(np.diff(finite) <= 1e-9), name


def test_function_sizes_scale_with_budget(curves):
    _t, _c, _m, out, _eb, _vo = curves
    res = out["overlapping"]
    f_small = res.make_function(5)
    f_big = res.make_function(BUDGET)
    assert f_big.size_bits() >= f_small.size_bits()


@pytest.mark.parametrize("mname", ["average", "avg_relative", "max_relative"])
def test_other_metrics_full_stack(workload, mname):
    """Each error metric runs through construction + evaluation and the
    optimal DPs keep their predicted == measured property."""
    table, counts, hierarchy = workload
    floor = max(1.0, float(np.percentile(counts[counts > 0], 5)))
    metric = (
        get_metric(mname, floor=floor)
        if "relative" in mname
        else get_metric(mname)
    )
    res = build_overlapping(hierarchy, metric, 20)
    fn = res.function_at(20)
    measured = evaluate_function(table, counts, fn, metric)
    assert measured == pytest.approx(res.error_at(20), abs=1e-6)
