"""Tests for the stream substrate: traces, windows, queries, monitors,
channel, control center."""

import numpy as np
import pytest

from repro import (
    Bucket,
    GroupTable,
    LongestPrefixMatchPartitioning,
    UIDDomain,
    get_metric,
)
from repro.streams import (
    Channel,
    ControlCenter,
    FaultModel,
    GroupedAggregationQuery,
    InstallScheduler,
    Monitor,
    SlidingWindows,
    Trace,
    TumblingWindows,
    exact_group_counts,
)


class TestTrace:
    def test_sorts_unordered_input(self):
        t = Trace([3.0, 1.0, 2.0], [30, 10, 20])
        assert list(t.timestamps) == [1.0, 2.0, 3.0]
        assert list(t.uids) == [10, 20, 30]

    def test_untimed(self):
        t = Trace.untimed([5, 6, 7], rate=2.0)
        assert list(t.timestamps) == [0.0, 0.5, 1.0]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Trace([1.0], [1, 2])

    def test_slice_time(self):
        t = Trace.untimed(list(range(10)))
        piece = t.slice_time(2.0, 5.0)
        assert list(piece.uids) == [2, 3, 4]

    def test_split_partitions(self):
        t = Trace.untimed(list(range(100)))
        parts = t.split(3, seed=1)
        assert sum(len(p) for p in parts) == 100
        seen = sorted(u for p in parts for u in p.uids.tolist())
        assert seen == list(range(100))

    def test_split_deterministic(self):
        t = Trace.untimed(list(range(50)))
        a = t.split(2, seed=5)
        b = t.split(2, seed=5)
        assert np.array_equal(a[0].uids, b[0].uids)

    def test_duration_and_iter(self):
        t = Trace([0.0, 4.0], [1, 2])
        assert t.duration == 4.0
        assert list(t) == [(0.0, 1), (4.0, 2)]


class TestWindows:
    def test_tumbling_partitions_stream(self):
        t = Trace.untimed(list(range(10)))  # timestamps 0..9
        wins = list(TumblingWindows(4.0).segment(t))
        assert [len(w) for w in wins] == [4, 4, 2]
        assert wins[0].start == 0.0 and wins[1].start == 4.0

    def test_tumbling_empty_trace(self):
        assert list(TumblingWindows(1.0).segment(Trace([], []))) == []

    def test_sliding_overlap(self):
        t = Trace.untimed(list(range(8)))
        wins = list(SlidingWindows(4.0, 2.0).segment(t))
        assert [len(w) for w in wins[:3]] == [4, 4, 4]
        assert wins[1].start == 2.0

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            TumblingWindows(0.0)
        with pytest.raises(ValueError):
            SlidingWindows(2.0, 3.0)
        with pytest.raises(ValueError):
            SlidingWindows(2.0, 0.0)


@pytest.fixture
def table():
    dom = UIDDomain(4)
    return GroupTable(dom, [dom.node(2, p) for p in range(4)],
                      ["g0", "g1", "g2", "g3"])


class TestQuery:
    def test_exact_counts(self, table):
        counts = exact_group_counts(table, [0, 1, 4, 8, 8, 15])
        assert list(counts) == [2, 1, 2, 1]

    def test_windowed_run(self, table):
        t = Trace.untimed([0, 4, 8, 12, 0, 4])
        q = GroupedAggregationQuery(table, TumblingWindows(4.0))
        results = list(q.run(t))
        assert len(results) == 2
        _w0, counts0 = results[0]
        assert counts0.sum() == 4

    def test_answer_dict_nonzero_only(self, table):
        q = GroupedAggregationQuery(table)
        ans = q.answer_dict([0, 0, 15])
        assert ans == {"g0": 2.0, "g3": 1.0}


class TestMonitorAndChannel:
    def test_monitor_requires_function(self):
        m = Monitor("m0")
        with pytest.raises(RuntimeError):
            m.process_window(0, [1, 2])

    def test_monitor_histograms(self, table):
        dom = table.domain
        fn = LongestPrefixMatchPartitioning(dom, [Bucket(1)])
        m = Monitor("m0")
        m.install_function(fn, version=0)
        msg = m.process_window(3, [0, 1, 2])
        assert msg.window_index == 3
        assert msg.histogram.get(1) == 3
        assert m.tuples_processed == 3

    def test_channel_accounting(self, table):
        dom = table.domain
        fn = LongestPrefixMatchPartitioning(dom, [Bucket(1)])
        ch = Channel(dom)
        ch.send_function(fn)
        assert ch.downstream_bytes == (fn.size_bits() + 7) // 8
        m = Monitor("m0")
        m.install_function(fn, 0)
        msg = m.process_window(0, [0, 1])
        ch.send_histogram(msg)
        assert ch.upstream_bytes == msg.size_bytes(dom)
        assert ch.total_bytes == ch.upstream_bytes + ch.downstream_bytes
        assert ch.raw_stream_bytes(100) == 100 * ((dom.height + 7) // 8)


class TestControlCenter:
    def test_rebuild_and_decode(self, table):
        cc = ControlCenter(table, get_metric("rms"),
                           algorithm="overlapping", budget=4)
        history = np.array([10.0, 0.0, 5.0, 5.0])
        fn = cc.rebuild_function(history)
        m = Monitor("m0")
        m.install_function(fn, cc.function_version)
        msg = m.process_window(0, [0, 1, 8, 12])
        est = cc.decode([msg])
        assert est.shape == (4,)
        assert est.sum() == pytest.approx(4.0)

    def test_merge_histograms(self, table):
        cc = ControlCenter(table, get_metric("rms"), budget=2)
        fn = cc.rebuild_function(np.array([1.0, 1, 1, 1]))
        monitors = [Monitor(f"m{i}") for i in range(2)]
        msgs = []
        for i, m in enumerate(monitors):
            m.install_function(fn, cc.function_version)
            msgs.append(m.process_window(0, [i * 4, i * 4 + 1]))
        merged = cc.merge_histograms(msgs)
        assert merged.total == 4

    def test_stale_function_rejected(self, table):
        cc = ControlCenter(table, get_metric("rms"), budget=2)
        fn = cc.rebuild_function(np.ones(4))
        m = Monitor("m0")
        m.install_function(fn, cc.function_version)
        msg = m.process_window(0, [0])
        cc.rebuild_function(np.ones(4))  # version bump
        with pytest.raises(ValueError, match="stale"):
            cc.decode([msg])

    def test_decode_without_function_rejected(self, table):
        cc = ControlCenter(table, get_metric("rms"))
        with pytest.raises(RuntimeError):
            cc.decode([])

    def test_approximate_answer_keys(self, table):
        cc = ControlCenter(table, get_metric("rms"),
                           algorithm="nonoverlapping", budget=4)
        fn = cc.rebuild_function(np.array([5.0, 0, 0, 5.0]))
        m = Monitor("m0")
        m.install_function(fn, cc.function_version)
        msg = m.process_window(0, [0, 15])
        ans = cc.approximate_answer([msg])
        assert set(ans) <= {"g0", "g1", "g2", "g3"}
        assert sum(ans.values()) == pytest.approx(2.0)


class TestChannelFaultAccounting:
    """Bytes are charged once per *wire transmission*: duplicates twice,
    dropped messages once (the bytes were spent even though nothing
    arrived), and every install retry again — so compression_ratio
    reflects real link cost."""

    def _message(self, table):
        dom = table.domain
        fn = LongestPrefixMatchPartitioning(dom, [Bucket(1)])
        m = Monitor("m0")
        m.install_function(fn, 0)
        return fn, m.process_window(0, [0, 1, 2])

    def test_duplicate_charged_per_copy(self, table):
        fn, msg = self._message(table)
        ch = Channel(table.domain, faults=FaultModel(duplicate=1.0))
        deliveries = ch.send_histogram(msg)
        size = msg.size_bytes(table.domain)
        assert len(deliveries) == 2
        assert len(ch.messages) == 2
        assert ch.upstream_bytes == 2 * size

    def test_drop_still_charged_once(self, table):
        fn, msg = self._message(table)
        ch = Channel(table.domain, faults=FaultModel(drop=1.0))
        deliveries = ch.send_histogram(msg)
        assert deliveries == []
        assert len(ch.messages) == 1
        assert ch.upstream_bytes == msg.size_bytes(table.domain)
        assert ch.delivered == []

    def test_duplicate_of_dropped_copy_still_possible(self, table):
        """drop=1 with duplicate=1: two transmissions, both lost, both
        charged."""
        fn, msg = self._message(table)
        ch = Channel(table.domain,
                     faults=FaultModel(drop=1.0, duplicate=1.0))
        assert ch.send_histogram(msg) == []
        assert ch.upstream_bytes == 2 * msg.size_bytes(table.domain)

    def test_install_retries_charged_per_attempt(self, table):
        fn, _msg = self._message(table)
        ch = Channel(table.domain, faults=FaultModel(install_drop=1.0))
        size = (fn.size_bits() + 7) // 8
        for _ in range(3):
            assert ch.send_function(fn, version=0) is False
        assert ch.downstream_bytes == 3 * size

    def test_clean_channel_single_delivery(self, table):
        fn, msg = self._message(table)
        ch = Channel(table.domain)
        deliveries = ch.send_histogram(msg)
        assert len(deliveries) == 1
        assert deliveries[0].delay == 0
        assert ch.upstream_bytes == msg.size_bytes(table.domain)
        assert ch.send_function(fn) is True


class TestInstallScheduler:
    def _fleet(self, table):
        dom = table.domain
        fn = LongestPrefixMatchPartitioning(dom, [Bucket(1)])
        cc = type("CC", (), {"function": fn, "function_version": 3})()
        monitor = Monitor("m0")
        return fn, cc, monitor

    def test_backoff_schedule_caps(self, table):
        """With every install lost, retries follow 1, 2, 4, 8, 8, ...
        windows between attempts (capped exponential backoff), each
        attempt charged downstream."""
        fn, cc, monitor = self._fleet(table)
        ch = Channel(table.domain, faults=FaultModel(install_drop=1.0))
        sched = InstallScheduler(backoff_base=1, backoff_cap=8)
        attempt_windows = []
        before = 0
        for w in range(23):
            sched.tick(w, cc, [monitor], ch)
            if ch.downstream_bytes > before:
                attempt_windows.append(w)
                before = ch.downstream_bytes
        assert attempt_windows == [0, 2, 6, 14, 22]
        size = (fn.size_bits() + 7) // 8
        assert ch.downstream_bytes == len(attempt_windows) * size
        assert sched.attempts == 5
        assert sched.retries == 4
        assert monitor.function is None

    def test_delivered_install_clears_state(self, table):
        fn, cc, monitor = self._fleet(table)
        ch = Channel(table.domain)
        sched = InstallScheduler()
        assert sched.tick(0, cc, [monitor], ch) == 1
        assert monitor.function is fn
        assert monitor.function_version == 3
        assert sched.pending == 0
        # Up to date: further ticks send nothing.
        bytes_after = ch.downstream_bytes
        sched.tick(1, cc, [monitor], ch)
        assert ch.downstream_bytes == bytes_after

    def test_crashed_monitor_reinstalled_next_tick(self, table):
        fn, cc, monitor = self._fleet(table)
        ch = Channel(table.domain)
        sched = InstallScheduler()
        sched.tick(0, cc, [monitor], ch)
        monitor.crash()
        assert monitor.crashes == 1
        assert sched.tick(1, cc, [monitor], ch) == 1
        assert monitor.function_version == 3

    def test_bad_backoff_rejected(self, table):
        with pytest.raises(ValueError):
            InstallScheduler(backoff_base=0)
        with pytest.raises(ValueError):
            InstallScheduler(backoff_base=4, backoff_cap=2)


class TestDecodeWindow:
    def _setup(self, table):
        cc = ControlCenter(table, get_metric("rms"),
                           algorithm="nonoverlapping", budget=4)
        fn = cc.rebuild_function(np.array([10.0, 6.0, 4.0, 2.0]))
        monitors = [Monitor(f"m{i}") for i in range(2)]
        for m in monitors:
            m.install_function(fn, cc.function_version)
        return cc, fn, monitors

    def test_duplicates_deduped_by_key(self, table):
        cc, _fn, monitors = self._setup(table)
        msg0 = monitors[0].process_window(0, [0, 1, 4])
        msg1 = monitors[1].process_window(0, [8, 12])
        clean = cc.decode_window([msg0, msg1])
        doubled = cc.decode_window([msg0, msg0, msg1, msg1, msg0])
        assert doubled.duplicates_dropped == 3
        assert doubled.monitors_reporting == 2
        assert np.array_equal(doubled.estimates, clean.estimates)

    def test_stale_policy_quarantine_counts(self, table):
        cc, _fn, monitors = self._setup(table)
        old = monitors[0].process_window(0, [0, 1])
        new_fn = cc.rebuild_function(np.array([10.0, 6.0, 4.0, 2.0]))
        monitors[1].install_function(new_fn, cc.function_version)
        fresh = monitors[1].process_window(0, [8])
        decoded = cc.decode_window(
            [old, fresh], expected_monitors=2, policy="quarantine"
        )
        assert decoded.stale_messages == 1
        assert decoded.monitors_reporting == 1
        assert decoded.estimates.sum() == pytest.approx(1.0)

    def test_stale_policy_rescale_scales_by_coverage(self, table):
        cc, _fn, monitors = self._setup(table)
        old = monitors[0].process_window(0, [0, 1])
        new_fn = cc.rebuild_function(np.array([10.0, 6.0, 4.0, 2.0]))
        monitors[1].install_function(new_fn, cc.function_version)
        fresh = monitors[1].process_window(0, [8])
        quarantined = cc.decode_window(
            [old, fresh], expected_monitors=2, policy="quarantine"
        )
        rescaled = cc.decode_window(
            [old, fresh], expected_monitors=2, policy="rescale"
        )
        assert rescaled.coverage == pytest.approx(0.5)
        assert np.array_equal(
            rescaled.estimates, quarantined.estimates * 2.0
        )

    def test_bad_policy_rejected(self, table):
        cc, _fn, monitors = self._setup(table)
        msg = monitors[0].process_window(0, [0])
        with pytest.raises(ValueError, match="stale_policy"):
            cc.decode_window([msg], policy="ignore")
        with pytest.raises(ValueError, match="stale_policy"):
            ControlCenter(table, get_metric("rms"), stale_policy="nope")


class TestChannelCounterBits:
    def test_narrow_counters_shrink_messages(self, table):
        dom = table.domain
        fn = LongestPrefixMatchPartitioning(dom, [Bucket(1)])
        wide = Channel(dom, counter_bits=32)
        narrow = Channel(dom, counter_bits=16)
        m = Monitor("m0")
        m.install_function(fn, 0)
        msg = m.process_window(0, [0, 1, 2])
        wide.send_histogram(msg)
        narrow.send_histogram(msg)
        assert narrow.upstream_bytes <= wide.upstream_bytes
