"""Tests for the live observability plane: windowed snapshots, online
quality signals, the event journal + replay, and the live surfaces
(/metrics endpoint, periodic writer, repro top)."""

import json
import re
import threading
import time
import urllib.request
from types import SimpleNamespace

import numpy as np
import pytest

from repro import UIDDomain, get_metric
from repro.data import TrafficModel, generate_subnet_table
from repro.data.traffic import generate_timestamped_trace
from repro.obs import (
    NULL_REGISTRY,
    EventJournal,
    MetricsRegistry,
    MetricsServer,
    NullJournal,
    PeriodicMetricsWriter,
    QualityTracker,
    bucket_quantile,
    drift_score,
    emit_window_record,
    get_journal,
    load_jsonl,
    normalized_distribution,
    occupancy_entropy,
    occupancy_skew,
    parse_serve_spec,
    read_journal,
    registry_records,
    render_summary,
    render_top,
    set_journal,
    span,
    take_snapshot,
    to_jsonl,
    to_prometheus,
    use_journal,
    use_registry,
)
from repro.obs.snapshots import snapshot_delta
from repro.obs.top import state_from_journal, state_from_series
from repro.streams import (
    AdaptiveMonitoringSystem,
    BucketDriftDetector,
    FaultModel,
    MonitoringSystem,
    Trace,
    replay_system_report,
)
from repro.streams.recalibrate import AdaptiveReport


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    with use_registry(reg):
        yield reg


@pytest.fixture(scope="module")
def workload():
    dom = UIDDomain(10)
    table = generate_subnet_table(dom, seed=2)
    ts, uids = generate_timestamped_trace(
        table, 8000, duration=40.0, seed=4,
        model=TrafficModel(active_fraction=0.15, zipf_exponent=1.2),
    )
    trace = Trace(ts, uids)
    return table, trace.slice_time(0, 20), trace.slice_time(20, 40)


FAULTS = "drop=0.15,dup=0.1,delay=0.1,crash=0.05,seed=7"


def _faulty_system(table):
    return MonitoringSystem(
        table, get_metric("rms"), num_monitors=3,
        algorithm="lpm_greedy", budget=40,
        stale_policy="rescale", faults=FaultModel.parse(FAULTS),
    )


@pytest.fixture(scope="module")
def journaled_run(workload, tmp_path_factory):
    """One seeded faulty run with the journal live; returns (report,
    journal path, parsed events)."""
    table, history, live = workload
    path = str(tmp_path_factory.mktemp("journal") / "run.journal")
    system = _faulty_system(table)
    with use_journal(EventJournal(path)):
        system.train(history)
        report = system.run(live, window_width=4.0)
    return report, path, read_journal(path)


# ---------------------------------------------------------------------------
# Windowed snapshots
# ---------------------------------------------------------------------------
class TestSnapshots:
    def test_counter_deltas_gauge_levels(self, registry):
        registry.counter("reqs").inc(5)
        registry.gauge("depth").set(2.0)
        first = emit_window_record(registry, 0)
        assert first["counters"]["reqs"] == 5.0
        assert first["gauges"]["depth"] == 2.0
        registry.counter("reqs").inc(3)
        registry.gauge("depth").set(7.0)
        second = emit_window_record(registry, 1)
        assert second["counters"]["reqs"] == 3.0  # delta, not cumulative
        assert second["gauges"]["depth"] == 7.0   # level, not delta
        assert [r["window"] for r in registry.window_series] == [0, 1]

    def test_unchanged_counter_omitted(self, registry):
        registry.counter("once").inc()
        emit_window_record(registry, 0)
        rec = emit_window_record(registry, 1)
        assert "once" not in rec["counters"]

    def test_distribution_delta_quantiles(self, registry):
        h = registry.histogram("sizes")
        for v in (0.5, 0.5, 50.0):
            h.observe(v)
        rec = emit_window_record(registry, 0)
        entry = rec["histograms"]["sizes"]
        assert entry["count"] == 3
        assert entry["sum"] == pytest.approx(51.0)
        assert entry["mean"] == pytest.approx(17.0)
        assert 0.0 < entry["p50"] <= 1.0
        assert entry["p99"] > entry["p50"]
        # Nothing new next window: the family disappears from the record.
        rec2 = emit_window_record(registry, 1)
        assert "sizes" not in rec2["histograms"]

    def test_timers_reported_separately(self, registry):
        with registry.timer("work").time():
            pass
        registry.histogram("plain").observe(1.0)
        rec = emit_window_record(registry, 0)
        assert "work" in rec["timers"]
        assert "plain" in rec["histograms"]
        assert "work" not in rec["histograms"]

    def test_labeled_instruments_keyed(self, registry):
        registry.counter("hits", shard="a").inc(1)
        registry.counter("hits", shard="b").inc(2)
        rec = emit_window_record(registry, 0)
        assert rec["counters"]["hits{shard=a}"] == 1.0
        assert rec["counters"]["hits{shard=b}"] == 2.0

    def test_null_registry_is_noop(self):
        assert emit_window_record(NULL_REGISTRY, 0) is None

    def test_snapshot_is_frozen_copy(self, registry):
        registry.counter("c").inc(1)
        snap = take_snapshot(registry)
        registry.counter("c").inc(10)
        assert snap.counters["c"] == 1.0
        delta = snapshot_delta(snap, take_snapshot(registry), window=5)
        assert delta["counters"]["c"] == 10.0
        assert delta["window"] == 5

    def test_record_is_json_serializable(self, registry):
        registry.counter("c", label="x").inc()
        registry.histogram("h").observe(3.5)
        rec = emit_window_record(registry, 0)
        assert json.loads(json.dumps(rec)) is not None


class TestBucketQuantile:
    BOUNDS = (1.0, 2.0, 4.0)

    def test_interpolates_within_bucket(self):
        # 4 observations: 2 in (1,2], 2 in (2,4].
        counts = (0, 2, 2, 0)
        assert bucket_quantile(self.BOUNDS, counts, 0.5) == pytest.approx(2.0)
        assert bucket_quantile(self.BOUNDS, counts, 0.25) == pytest.approx(1.5)
        assert bucket_quantile(self.BOUNDS, counts, 1.0) == pytest.approx(4.0)

    def test_overflow_clamped_to_last_bound(self):
        counts = (0, 0, 0, 3)  # everything past the last finite bound
        assert bucket_quantile(self.BOUNDS, counts, 0.5) == pytest.approx(4.0)

    def test_empty_distribution(self):
        assert bucket_quantile(self.BOUNDS, (0, 0, 0, 0), 0.9) == 0.0

    def test_quantile_validated(self):
        with pytest.raises(ValueError):
            bucket_quantile(self.BOUNDS, (1, 0, 0, 0), 1.5)


# ---------------------------------------------------------------------------
# Online quality signals
# ---------------------------------------------------------------------------
class TestQualitySignals:
    def test_spill_fraction(self):
        tracker = QualityTracker()
        q = tracker.observe(
            counts={1: 30.0, 2: 30.0}, unmatched=40.0, num_buckets=4,
            version=0, coverage=1.0, messages=4, duplicates=0, stale=0,
        )
        assert q.spill_fraction == pytest.approx(0.4)

    def test_entropy_and_skew_extremes(self):
        assert occupancy_entropy([10, 10, 10, 10], 4) == pytest.approx(1.0)
        assert occupancy_entropy([40, 0, 0, 0], 4) == pytest.approx(0.0)
        assert occupancy_skew([10, 10, 10, 10], 4) == pytest.approx(1.0)
        assert occupancy_skew([40, 0, 0, 0], 4) == pytest.approx(4.0)
        assert occupancy_entropy([], 4) == 0.0
        assert occupancy_skew([], 4) == 0.0

    def test_first_window_anchors_reference(self):
        tracker = QualityTracker()
        base = dict(num_buckets=4, version=0, coverage=1.0,
                    messages=2, duplicates=0, stale=0)
        first = tracker.observe(counts={1: 10.0}, unmatched=0.0, **base)
        assert first.drift_score == 0.0
        shifted = tracker.observe(counts={2: 10.0}, unmatched=0.0, **base)
        assert shifted.drift_score == pytest.approx(1.0)  # disjoint mass

    def test_version_change_reanchors(self):
        tracker = QualityTracker()
        base = dict(num_buckets=4, coverage=1.0,
                    messages=2, duplicates=0, stale=0)
        tracker.observe(counts={1: 10.0}, unmatched=0.0, version=0, **base)
        q = tracker.observe(
            counts={2: 10.0}, unmatched=0.0, version=1, **base
        )
        assert q.drift_score == 0.0  # new function, new reference

    def test_duplicate_and_stale_rates(self):
        tracker = QualityTracker()
        q = tracker.observe(
            counts={1: 5.0}, unmatched=0.0, num_buckets=2, version=0,
            coverage=0.5, messages=8, duplicates=2, stale=4,
        )
        assert q.duplicate_rate == pytest.approx(0.25)
        assert q.stale_rate == pytest.approx(0.5)
        assert q.coverage == pytest.approx(0.5)

    def test_drift_detector_delegates_to_quality_helpers(self):
        """The recalibration trigger and the quality.drift_score gauge
        must compute the same quantity."""
        detector = BucketDriftDetector()
        ref_hist = SimpleNamespace(counts={1: 60.0, 2: 40.0}, unmatched=0.0)
        cur_hist = SimpleNamespace(counts={1: 10.0, 2: 70.0}, unmatched=20.0)
        detector.set_reference(ref_hist)
        expected = drift_score(
            normalized_distribution(ref_hist.counts, ref_hist.unmatched),
            cur_hist.counts,
            cur_hist.unmatched,
        )
        assert detector.score(cur_hist) == pytest.approx(expected, abs=0)

    def test_window_reports_carry_quality(self, workload, registry):
        table, history, live = workload
        system = _faulty_system(table)
        system.train(history)
        report = system.run(live, window_width=4.0)
        assert any(w.coverage > 0 for w in report.windows)
        assert all(0.0 <= w.occupancy_entropy <= 1.0 for w in report.windows)
        # ... and the gauges were exported.
        assert registry.get("gauge", "quality.spill_fraction") is not None
        assert registry.get("gauge", "quality.drift_score") is not None


# ---------------------------------------------------------------------------
# Event journal
# ---------------------------------------------------------------------------
class TestJournal:
    def test_sequence_ids_and_roundtrip(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with EventJournal(path) as journal:
            assert journal.emit("run_start", windows=2) == 0
            assert journal.emit("decode", window_index=0) == 1
            assert journal.events_written == 2
        events = read_journal(path)
        assert [e["seq"] for e in events] == [0, 1]
        assert events[0]["event"] == "run_start"
        assert events[1]["window_index"] == 0
        assert all(e["ts"] >= 0 for e in events)

    def test_gap_detected(self, tmp_path):
        path = tmp_path / "gap.jsonl"
        path.write_text(
            '{"seq": 0, "event": "run_start"}\n'
            '{"seq": 2, "event": "decode"}\n'
        )
        with pytest.raises(ValueError, match="sequence gap"):
            read_journal(str(path))
        # Lenient mode returns the valid prefix instead.
        assert len(read_journal(str(path), strict=False)) == 1

    def test_partial_last_line_lenient(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        path.write_text(
            '{"seq": 0, "event": "run_start"}\n'
            '{"seq": 1, "event": "dec'  # mid-flush
        )
        with pytest.raises(ValueError):
            read_journal(str(path))
        assert len(read_journal(str(path), strict=False)) == 1

    def test_use_journal_scopes_and_closes(self, tmp_path):
        path = str(tmp_path / "scoped.jsonl")
        journal = EventJournal(path)
        assert isinstance(get_journal(), NullJournal)
        with use_journal(journal):
            assert get_journal() is journal
            get_journal().emit("run_start")
        assert isinstance(get_journal(), NullJournal)
        assert journal._file.closed
        assert get_journal().emit("decode") == -1  # null sink swallows

    def test_set_journal_returns_previous(self):
        previous = set_journal(None)
        assert isinstance(previous, NullJournal)

    def test_concurrent_emit_stays_gapless(self, tmp_path):
        path = str(tmp_path / "threads.jsonl")
        journal = EventJournal(path)

        def work():
            for _ in range(200):
                journal.emit("decode")

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        journal.close()
        events = read_journal(path)  # strict: raises on any gap
        assert len(events) == 800


# ---------------------------------------------------------------------------
# Replay (acceptance: bit-identical reconstruction)
# ---------------------------------------------------------------------------
class TestReplay:
    def test_replay_is_bit_identical(self, journaled_run):
        report, _path, events = journaled_run
        replayed = replay_system_report(events)
        assert replayed == report  # dataclass equality: every field, bit-exact
        assert replayed.mean_error == report.mean_error
        assert replayed.compression_ratio == report.compression_ratio

    def test_journal_records_the_faults(self, journaled_run):
        report, _path, events = journaled_run
        kinds = {e["event"] for e in events}
        assert {"run_start", "rebuild", "install", "decode",
                "run_end"} <= kinds
        crashes = sum(1 for e in events if e["event"] == "fault.crash")
        assert crashes == report.monitor_crashes > 0
        run_start = next(e for e in events if e["event"] == "run_start")
        assert run_start["faults"]["drop"] == pytest.approx(0.15)
        assert run_start["monitors"] == 3

    def test_replay_rejects_truncation(self, journaled_run):
        _report, _path, events = journaled_run
        with pytest.raises(ValueError, match="no run_end"):
            replay_system_report(
                [e for e in events if e["event"] != "run_end"]
            )
        with pytest.raises(ValueError, match="decode events"):
            without_decode = [
                e for e in events if e["event"] != "decode"
            ]
            replay_system_report(without_decode)

    def test_replay_rejects_crash_mismatch(self, journaled_run):
        _report, _path, events = journaled_run
        tampered = [e for e in events if e["event"] != "fault.crash"]
        with pytest.raises(ValueError, match="crash"):
            replay_system_report(tampered)

    def test_adaptive_run_replays_drift_and_rebuilds(
        self, workload, tmp_path
    ):
        table, history, live = workload
        path = str(tmp_path / "adaptive.journal")
        system = AdaptiveMonitoringSystem(
            table, get_metric("rms"), num_monitors=2,
            algorithm="lpm_greedy", budget=40,
            detector=BucketDriftDetector(threshold=0.01, patience=1),
        )
        with use_journal(EventJournal(path)):
            system.train(history)
            report = system.run(live, window_width=4.0)
        replayed = replay_system_report(read_journal(path))
        assert isinstance(replayed, AdaptiveReport)
        assert replayed == report
        assert replayed.drift_scores == report.drift_scores
        assert replayed.rebuilds == report.rebuilds
        assert report.rebuilds  # the aggressive detector actually fired


# ---------------------------------------------------------------------------
# Live surfaces: HTTP endpoint, periodic writer
# ---------------------------------------------------------------------------
class TestServeSpec:
    @pytest.mark.parametrize("spec,expected", [
        (":9100", ("127.0.0.1", 9100)),
        ("9100", ("127.0.0.1", 9100)),
        ("0.0.0.0:80", ("0.0.0.0", 80)),
        (" :0 ", ("127.0.0.1", 0)),
    ])
    def test_accepted(self, spec, expected):
        assert parse_serve_spec(spec) == expected

    @pytest.mark.parametrize("spec", ["", "x", ":bad", ":70000", "host:"])
    def test_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_serve_spec(spec)


def _http_get(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read()


class TestMetricsServer:
    def test_serves_prometheus_and_series(self, registry):
        registry.counter("hits", route="/a").inc(3)
        emit_window_record(registry, 0)
        with MetricsServer(registry, port=0) as server:
            status, ctype, body = _http_get(f"{server.url}/metrics")
            assert status == 200
            assert ctype.startswith("text/plain")
            assert "0.0.4" in ctype
            text = body.decode("utf-8")
            assert '# TYPE hits counter' in text
            assert 'hits{route="/a"} 3.0' in text

            status, ctype, body = _http_get(f"{server.url}/series.json")
            assert status == 200
            assert ctype == "application/json"
            series = json.loads(body)
            assert len(series) == 1
            assert series[0]["counters"]["hits{route=/a}"] == 3.0

            status, _ctype, body = _http_get(f"{server.url}/healthz")
            assert status == 200 and body == b"ok\n"

    def test_unknown_path_404(self, registry):
        with MetricsServer(registry, port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _http_get(f"{server.url}/nope")
            assert err.value.code == 404

    def test_live_updates_visible_mid_run(self, registry):
        with MetricsServer(registry, port=0) as server:
            registry.counter("ticks").inc()
            _s, _c, first = _http_get(f"{server.url}/metrics")
            registry.counter("ticks").inc()
            _s, _c, second = _http_get(f"{server.url}/metrics")
        assert b"ticks 1.0" in first
        assert b"ticks 2.0" in second


class TestPeriodicWriter:
    def test_rewrites_file(self, registry, tmp_path):
        path = str(tmp_path / "live.jsonl")
        registry.counter("c").inc()
        writer = PeriodicMetricsWriter(
            registry, path, fmt="json", interval=0.05
        )
        writer.start()
        deadline = time.time() + 5.0
        while writer.writes < 2 and time.time() < deadline:
            time.sleep(0.01)
        registry.counter("c").inc(41)
        writer.stop()
        assert writer.writes >= 3  # periodic writes plus the final one
        records = load_jsonl(path)
        by_name = {r["name"]: r for r in records}
        assert by_name["c"]["value"] == 42.0  # final state on stop

    def test_interval_validated(self, registry, tmp_path):
        with pytest.raises(ValueError):
            PeriodicMetricsWriter(registry, str(tmp_path / "x"), interval=0)


# ---------------------------------------------------------------------------
# repro top state + rendering
# ---------------------------------------------------------------------------
class TestTop:
    def test_state_from_journal(self, journaled_run):
        report, _path, events = journaled_run
        state = state_from_journal(events, "run.journal")
        assert state.finished
        assert len(state.rows) == len(report.windows)
        assert [r.window for r in state.rows] == [
            w.window_index for w in report.windows
        ]
        assert state.total_tuples == sum(w.tuples for w in report.windows)
        assert state.mean_error == pytest.approx(report.mean_error)
        assert state.counters.get("crash") == report.monitor_crashes
        assert state.counters.get("installs", 0) > 0

    def test_state_from_series(self, workload):
        table, history, live = workload
        reg = MetricsRegistry()
        with use_registry(reg):
            system = MonitoringSystem(
                table, get_metric("rms"), num_monitors=2,
                algorithm="lpm_greedy", budget=40,
            )
            system.train(history)
            report = system.run(live, window_width=4.0)
        state = state_from_series(reg.window_series, "http://x")
        assert len(state.rows) == len(report.windows)
        assert state.total_tuples == sum(w.tuples for w in report.windows)
        row = state.rows[0]
        assert row.coverage == pytest.approx(1.0)
        assert row.error is not None and row.bytes is not None

    def test_render_mentions_everything(self, journaled_run):
        _report, _path, events = journaled_run
        state = state_from_journal(events, "run.journal")
        text = render_top(state, max_rows=4)
        assert "[finished]" in text
        assert "faults/installs:" in text
        assert "error bar" in text
        # max_rows bounds the table, not the totals.
        lines = [l for l in text.splitlines() if re.match(r"\s+\d+ ", l)]
        assert len(lines) <= 4

    def test_render_empty_state(self):
        from repro.obs import TopState
        text = render_top(TopState(source="nothing"))
        assert "no decoded windows yet" in text


# ---------------------------------------------------------------------------
# Satellite: concurrency — per-instrument locks, parallel ingest
# ---------------------------------------------------------------------------
class TestConcurrentIngest:
    def test_no_lost_increments_across_instruments(self, registry):
        """Hammer several families from many threads; every update must
        land (this fails with lost increments if instruments share
        unlocked state)."""
        n_threads, n_iter = 8, 2000

        def work(idx):
            c = registry.counter("shared")
            mine = registry.counter("per_thread", thread=str(idx))
            h = registry.histogram("values")
            for i in range(n_iter):
                c.inc()
                mine.inc(2)
                h.observe(float(i % 7))

        threads = [
            threading.Thread(target=work, args=(i,))
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.counter("shared").value == n_threads * n_iter
        for i in range(n_threads):
            assert registry.counter(
                "per_thread", thread=str(i)
            ).value == 2 * n_iter
        h = registry.histogram("values")
        assert h.count == n_threads * n_iter
        assert sum(h.bucket_counts) == h.count
        expected_sum = n_threads * sum(i % 7 for i in range(n_iter))
        assert h.sum == pytest.approx(expected_sum)

    def test_per_instrument_locks_are_distinct(self, registry):
        a = registry.counter("a")
        b = registry.counter("b")
        assert a._lock is not b._lock
        assert a._lock is not registry._lock

    def test_spans_interleave_per_thread(self, registry):
        """Nested spans from concurrent threads must keep their own
        parent chains (thread-local stacks)."""
        def work(idx):
            with span("outer", thread=idx):
                with span("inner", thread=idx):
                    time.sleep(0.001)

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        inners = [s for s in registry.spans if s.name == "inner"]
        assert len(inners) == 6
        assert all(s.parent == "outer" for s in inners)

    def test_parallel_system_ingest_matches_serial(self, workload):
        """MonitoringSystem(parallel=N) under a live registry: reports
        and metric totals must match the serial run exactly."""
        table, history, live = workload
        outcomes = {}
        for workers in (1, 3):
            reg = MetricsRegistry()
            with use_registry(reg):
                system = MonitoringSystem(
                    table, get_metric("rms"), num_monitors=3,
                    algorithm="lpm_greedy", budget=40,
                    faults=FaultModel.parse(FAULTS),
                    stale_policy="rescale", parallel=workers,
                )
                system.train(history)
                report = system.run(live, window_width=4.0)
            outcomes[workers] = (
                report,
                reg.counter("system.tuples").value,
                reg.counter("channel.upstream.messages").value,
                len(reg.window_series),
            )
        serial, parallel = outcomes[1], outcomes[3]
        assert parallel[0].windows == serial[0].windows
        assert parallel[1:] == serial[1:]


# ---------------------------------------------------------------------------
# Satellite: Prometheus exposition — headers once, escaping round-trip
# ---------------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)'
    r'(?:\{(?P<labels>.*)\})?'
    r' (?P<value>\S+)$'
)
_LABEL_RE = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>(?:\\.|[^"\\])*)"')


def _prom_unescape(value):
    out, i = [], 0
    while i < len(value):
        if value[i] == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, nxt))
            i += 2
        else:
            out.append(value[i])
            i += 1
    return "".join(out)


def _parse_exposition(text):
    """A minimal Prometheus text-format scraper: returns
    ({(name, labelitems): value}, {name: type}, {name: help_count})."""
    samples, types, headers = {}, {}, {}
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert name not in types, f"duplicate # TYPE for {name}"
            types[name] = kind
            continue
        if line.startswith("# HELP "):
            name = line.split(" ", 3)[2]
            headers[name] = headers.get(name, 0) + 1
            continue
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        assert m, f"unparseable sample line: {line!r}"
        labels = tuple(
            (lm.group("key"), _prom_unescape(lm.group("val")))
            for lm in _LABEL_RE.finditer(m.group("labels") or "")
        )
        samples[(m.group("name"), labels)] = float(m.group("value"))
    return samples, types, headers


class TestPrometheusExposition:
    def test_headers_once_per_family(self):
        reg = MetricsRegistry()
        for shard in ("a", "b", "c"):
            reg.counter("hits", shard=shard).inc()
        reg.histogram("sizes", kind="x").observe(1.0)
        reg.histogram("sizes", kind="y").observe(2.0)
        text = to_prometheus(reg)
        assert text.count("# TYPE hits counter") == 1
        assert text.count("# HELP hits ") == 1
        assert text.count("# TYPE sizes histogram") == 1
        # Headers precede their family's first sample.
        assert text.index("# TYPE hits counter") < text.index("hits{")

    def test_label_values_escaped_and_recoverable(self):
        reg = MetricsRegistry()
        nasty = 'quo"te\\slash\nnewline'
        reg.counter("evil", path=nasty).inc(7)
        reg.gauge("ok", plain="x").set(1.5)
        text = to_prometheus(reg)
        assert "\n\n" not in text  # raw newline never leaks into a line
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        samples, types, headers = _parse_exposition(text)
        assert samples[("evil", (("path", nasty),))] == 7.0
        assert samples[("ok", (("plain", "x"),))] == 1.5
        assert types == {"evil": "counter", "ok": "gauge"}
        assert headers == {"evil": 1, "ok": 1}

    def test_full_run_scrape_parses(self, registry, workload):
        """Scrape-parse round-trip over a real run's registry: every
        line must parse and cumulative bucket counts must be sane."""
        table, history, live = workload
        system = _faulty_system(table)
        system.train(history)
        system.run(live, window_width=4.0)
        text = to_prometheus(registry)
        samples, types, _headers = _parse_exposition(text)
        for name in ("quality_coverage", "quality_spill_fraction",
                     "quality_drift_score"):
            assert types[name] == "gauge"
            assert any(key[0] == name for key in samples)
        count = samples[("system_windows", ())]
        assert count > 0
        # histogram invariants: _count equals the +Inf bucket.
        inf_bucket = samples[
            ("system_window_error_bucket", (("le", "+Inf"),))
        ]
        assert samples[("system_window_error_count", ())] == inf_bucket


# ---------------------------------------------------------------------------
# Satellite: JSONL round-trip fidelity
# ---------------------------------------------------------------------------
class TestJsonlRoundtrip:
    def test_zero_observation_timer_roundtrips(self, tmp_path):
        reg = MetricsRegistry()
        reg.timer("never.fired")  # created, never observed
        reg.counter("c").inc()
        path = tmp_path / "m.jsonl"
        path.write_text(to_jsonl(reg))
        records = load_jsonl(str(path))
        assert records == registry_records(reg)
        timer = next(r for r in records if r["name"] == "never.fired")
        assert timer["count"] == 0
        assert timer["min"] == 0.0 and timer["max"] == 0.0  # not ±inf
        summary = render_summary(records)
        assert "never.fired" in summary

    def test_unicode_labels_roundtrip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("requêtes", ruta="café/β", emoji="🦉").inc(3)
        reg.gauge("température", unité="°C").set(-12.5)
        path = tmp_path / "uni.jsonl"
        path.write_text(to_jsonl(reg))
        records = load_jsonl(str(path))
        assert records == registry_records(reg)
        counter = next(r for r in records if r["type"] == "counter")
        assert counter["labels"] == {"ruta": "café/β", "emoji": "🦉"}
        summary = render_summary(records)
        assert "requêtes" in summary and "°C" in summary

    def test_exact_value_fidelity(self, tmp_path):
        reg = MetricsRegistry()
        reg.gauge("pi").set(0.1 + 0.2)  # classic non-representable sum
        reg.histogram("h").observe(1e-17)
        path = tmp_path / "exact.jsonl"
        path.write_text(to_jsonl(reg))
        records = load_jsonl(str(path))
        assert records == registry_records(reg)  # bit-exact floats


# ---------------------------------------------------------------------------
# Satellite: span tree rendering
# ---------------------------------------------------------------------------
class TestSpanTree:
    def test_summary_indents_children(self, registry):
        with span("system.run"):
            with span("control.decode"):
                pass
            with span("monitor.window"):
                pass
        spans = [
            r for r in registry_records(registry) if r["type"] == "span"
        ]
        from repro.obs import render_span_tree
        lines = render_span_tree(spans)
        run_line = next(l for l in lines if "system.run" in l)
        child_line = next(l for l in lines if "control.decode" in l)
        run_indent = len(run_line) - len(run_line.lstrip())
        child_indent = len(child_line) - len(child_line.lstrip())
        assert child_indent > run_indent
        # ... and the tree reaches the rendered stats summary.
        assert render_summary(registry_records(registry)).count(
            "  " * 1 + "system.run"
        )

    def test_repeated_spans_rolled_up(self, registry):
        for _ in range(3):
            with span("outer"):
                with span("inner"):
                    pass
        from repro.obs import render_span_tree
        spans = [
            r for r in registry_records(registry) if r["type"] == "span"
        ]
        lines = render_span_tree(spans)
        inner_lines = [l for l in lines if "inner" in l]
        assert len(inner_lines) == 1
        assert "count=3" in inner_lines[0]

    def test_cycle_guard(self):
        from repro.obs import render_span_tree
        spans = [
            {"name": "a", "parent": "b", "duration": 0.1},
            {"name": "b", "parent": "a", "duration": 0.2},
        ]
        lines = render_span_tree(spans)
        assert len(lines) == 2  # both emitted exactly once, no hang


# ---------------------------------------------------------------------------
# Satellite: orphaned span parents render as roots
# ---------------------------------------------------------------------------
class TestSpanTreeOrphans:
    def test_orphaned_parent_renders_as_root(self):
        from repro.obs import render_span_tree
        spans = [
            # Parent name never recorded as a span itself (e.g. the
            # root span was captured by a different registry).
            {"name": "child.a", "parent": "ghost.run", "duration": 0.1},
            {"name": "child.b", "parent": "ghost.run", "duration": 0.2},
            {"name": "real.root", "parent": None, "duration": 0.3},
        ]
        lines = render_span_tree(spans)
        assert len(lines) == 3  # nothing silently dropped
        for name in ("child.a", "child.b", "real.root"):
            line = next(l for l in lines if name in l)
            indent = len(line) - len(line.lstrip())
            assert indent == 2  # all roots: no phantom indentation

    def test_self_parent_is_a_root(self):
        from repro.obs import render_span_tree
        lines = render_span_tree(
            [{"name": "loop", "parent": "loop", "duration": 0.1}]
        )
        assert len(lines) == 1 and "count=1" in lines[0]


# ---------------------------------------------------------------------------
# Satellite: timer quantiles over empty window records
# ---------------------------------------------------------------------------
class TestEmptyWindowTimers:
    def test_idle_window_omits_the_timer(self, registry):
        registry.timer("decode.duration").observe(0.5)
        first = emit_window_record(registry, 0)
        assert "decode.duration" in first["timers"]
        # No observations land in window 1: the family is omitted,
        # not reported as a zero/NaN quantile row.
        second = emit_window_record(registry, 1)
        assert second["timers"] == {}
        assert second["histograms"] == {}

    def test_never_observed_timer_absent_from_first_window(self, registry):
        registry.timer("never.fired")  # family exists, count == 0
        record = emit_window_record(registry, 0)
        assert record["timers"] == {}

    def test_bucket_quantile_of_empty_delta_is_zero(self):
        bounds = (1.0, 2.0, 4.0)
        assert bucket_quantile(bounds, (0, 0, 0, 0), 0.99) == 0.0


# ---------------------------------------------------------------------------
# Satellite: atomic metrics writes
# ---------------------------------------------------------------------------
class TestAtomicWrites:
    def test_write_leaves_no_temp_file(self, registry, tmp_path):
        from repro.obs import write_metrics
        registry.counter("c").inc(3)
        path = tmp_path / "metrics.jsonl"
        write_metrics(registry, str(path), "json")
        write_metrics(registry, str(path), "json")  # overwrite in place
        leftovers = [
            p for p in tmp_path.iterdir() if p.name != "metrics.jsonl"
        ]
        assert leftovers == []
        records = load_jsonl(str(path))
        assert any(
            r["name"] == "c" and r["value"] == 3 for r in records
        )

    def test_failed_render_cleans_up(self, registry, tmp_path):
        from repro.obs import write_metrics
        path = tmp_path / "metrics.jsonl"
        with pytest.raises(ValueError, match="unknown metrics format"):
            write_metrics(registry, str(path), "xml")
        assert list(tmp_path.iterdir()) == []

    def test_periodic_writer_final_state_is_atomic(self, registry, tmp_path):
        registry.counter("writes").inc()
        path = tmp_path / "live.jsonl"
        with PeriodicMetricsWriter(
            registry, str(path), fmt="json", interval=30.0
        ):
            pass  # stop() always writes the final state
        assert [p.name for p in tmp_path.iterdir()] == ["live.jsonl"]
        assert load_jsonl(str(path))


# ---------------------------------------------------------------------------
# Satellite: wall-clock anchor on run_start
# ---------------------------------------------------------------------------
class TestWallStart:
    def test_run_start_carries_iso_wall_start(self, journaled_run):
        from datetime import datetime
        _report, _path, events = journaled_run
        run_start = next(
            e for e in events if e["event"] == "run_start"
        )
        anchor = run_start["wall_start"]
        parsed = datetime.fromisoformat(anchor)
        assert parsed.tzinfo is not None  # UTC-anchored, not naive
        # The journal's own wall_start is what got stamped.
        assert isinstance(anchor, str) and "T" in anchor

    def test_null_journal_has_no_anchor(self):
        assert NullJournal().wall_start is None

    def test_replay_unaffected_by_wall_start(self, journaled_run):
        # Byte-identity of the replayed report over a journal carrying
        # the new field (replay treats it as envelope, not state).
        report, path, _events = journaled_run
        assert replay_system_report(read_journal(path)) == report
