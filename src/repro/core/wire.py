"""The v2 histogram wire format: queryable without deserialization.

The v1 codec in :mod:`repro.core.serialize` ships a histogram as a flat
bit string of ``(node, fixed-width counter)`` pairs that the Control
Center must fully decode into a :class:`~.partition.Histogram` before it
can answer anything.  This module is the next step the ROADMAP calls
"query-from-serialized": a byte-aligned, self-describing binary format
whose payload can be *queried in place* — point counts, subtree (range)
totals, per-group estimates, and merges across Monitors all operate on
the raw buffer through :class:`WireHistogram`, a zero-copy view over a
``memoryview``.

Layout (all multi-byte integers little-endian)::

    offset  size  field
    ------  ----  -----------------------------------------------------
    0       2     magic  b"RW"
    2       1     version (currently 2)
    3       1     flags:  bits 0-1  semantics code (see serialize.py)
                          bit  2    FLOAT64 counters (weighted values)
                          bit  3    HAS_TOTALS (explicit total/unmatched)
                          bits 4-7  reserved, must be zero
    4       1     domain height (0..63)
    5       1     counter stride ``w`` in bytes: 1, 2, 4 or 8
    6       4     CRC32 over bytes [0:6] + bytes [10:] (detects any
                  corruption, including of the header fields themselves)
    10      var   LEB128 bucket count ``n``
    [+16]         (HAS_TOTALS only) unmatched, total as float64
    var     var   node-id section: LEB128 first node id, then LEB128
                  successive deltas (node ids are sorted and unique, so
                  every delta is >= 1)
    end-n*w n*w   counter section: ``n`` counters at fixed stride ``w``
                  (unsigned little-endian ints, or float64 when the
                  FLOAT64 flag is set)

Design notes:

* **Self-describing counters.** v1's ``counter_bits`` is an
  out-of-band contract between encoder and decoder (see the hazard
  note in :mod:`repro.core.serialize`); here the stride byte travels
  with the payload and the encoder picks the narrowest width that fits,
  so small windows pay 1-byte counters instead of v1's fixed 32 bits.
* **Fixed-stride counter section.** The counter section sits at the
  *end* of the buffer, so its offset is computable from the header
  alone (``len(data) - n * w``) and counters are directly addressable:
  :attr:`WireHistogram.values` is one ``np.frombuffer`` over the
  payload — no copy, no parse.
* **Delta-encoded node ids.** Bucket node ids are sorted, so LEB128
  deltas cost ~``log2(gap)`` bits instead of v1's
  ``ceil(log2(h+1)) + depth`` bits per identifier; dense functions
  (the common case at realistic budgets) pay one byte per bucket.
* **Integrity.** The CRC32 makes every truncation or bit flip a
  :class:`ValueError` at parse time — a corrupted payload can never
  decode to silently-wrong counts (property-tested by the fuzz suite
  in ``tests/test_wire.py``).
* **Exactness.** Integer counters round-trip float64 -> uint -> float64
  losslessly (the encoder rejects non-integral or negative values
  unless the float64 mode is chosen), so v2 decodes are bit-identical
  to the histograms that were encoded, and query-from-wire estimates
  are bit-identical to decode-then-estimate.
* **Mergeability is a format property.** :func:`merge_wire` combines
  payloads into a new payload using the same concatenate/unique/
  bincount accumulation as :meth:`.partition.Histogram.merge`, so
  merged counters are bit-for-bit the values an object-level merge
  would produce — shard fan-in (ROADMAP item 1) never needs to
  materialize :class:`~.partition.Histogram` objects.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .domain import UIDDomain
from .partition import Histogram

__all__ = [
    "WIRE_FORMATS",
    "MAGIC",
    "VERSION",
    "WireHistogram",
    "encode_histogram_v2",
    "decode_histogram_v2",
    "merge_wire",
]

#: Wire formats the streams layer can be asked to speak.
WIRE_FORMATS = ("v1", "v2")

MAGIC = b"RW"
VERSION = 2

_FLAG_SEMANTICS_MASK = 0b0000_0011
_FLAG_FLOAT64 = 0b0000_0100
_FLAG_HAS_TOTALS = 0b0000_1000
_FLAG_RESERVED_MASK = 0b1111_0000

#: flags/semantics codes shared with the v1 function codec.
_SEMANTICS_CODES = {
    "nonoverlapping": 0,
    "overlapping": 1,
    "longest_prefix_match": 2,
}
_CODE_SEMANTICS = {v: k for k, v in _SEMANTICS_CODES.items()}

_HEADER = struct.Struct("<2sBBBBI")  # magic, version, flags, height, stride, crc
_HEADER_LEN = _HEADER.size  # 10
_TOTALS = struct.Struct("<dd")

_STRIDES = (1, 2, 4, 8)
_UINT_DTYPES = {1: "<u1", 2: "<u2", 4: "<u4", 8: "<u8"}
#: Longest admissible LEB128 encoding (64-bit payloads).
_LEB_MAX_BYTES = 10

#: Counter-mode names accepted by :func:`encode_histogram_v2`.
_COUNTER_MODES = ("auto", "u8", "u16", "u32", "u64", "float64")
_MODE_STRIDE = {"u8": 1, "u16": 2, "u32": 4, "u64": 8, "float64": 8}


def _leb_encode(value: int, out: bytearray) -> None:
    """Append the minimal LEB128 encoding of a nonnegative integer."""
    if value < 0:
        raise ValueError(f"LEB128 values must be nonnegative: {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _leb_decode(data, pos: int, end: int) -> Tuple[int, int]:
    """Decode one LEB128 integer from ``data[pos:end]``.

    Returns ``(value, next_pos)``; raises :class:`ValueError` on
    truncation or on encodings longer than 64 bits (so a corrupted
    continuation bit can never make the decoder loop or build a huge
    integer)."""
    value = 0
    shift = 0
    for i in range(_LEB_MAX_BYTES):
        if pos + i >= end:
            raise ValueError("malformed v2 payload: truncated varint")
        byte = data[pos + i]
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            if value >> 64:
                raise ValueError("malformed v2 payload: varint exceeds 64 bits")
            return value, pos + i + 1
        shift += 7
    raise ValueError("malformed v2 payload: varint longer than 10 bytes")


def _pick_stride(max_value: int) -> int:
    for w in _STRIDES:
        if max_value < (1 << (8 * w)):
            return w
    raise ValueError(
        f"count {max_value} does not fit in a 64-bit wire counter"
    )


def encode_histogram_v2(
    histogram: Histogram,
    domain: UIDDomain,
    semantics: str = "nonoverlapping",
    counters: str = "auto",
) -> bytes:
    """Serialize a histogram to the v2 wire form.

    ``counters`` selects the counter mode: ``"auto"`` (the default)
    uses the narrowest unsigned width that fits every count, switching
    to float64 automatically when any value is non-integral or
    negative; ``"float64"`` forces the weighted-values mode; ``"u8"``/
    ``"u16"``/``"u32"``/``"u64"`` force a fixed unsigned width (a value
    that does not fit raises, exactly like v1's overflow check).

    The histogram's ``unmatched``/``total`` accounting is preserved:
    when it is derivable (no unmatched traffic and ``total`` equals the
    counter sum) it is omitted from the wire and recomputed at decode
    time with the identical float operation, otherwise 16 explicit
    bytes carry it — either way ``decode_histogram_v2`` is a lossless
    inverse.
    """
    if semantics not in _SEMANTICS_CODES:
        known = ", ".join(sorted(_SEMANTICS_CODES))
        raise ValueError(f"unknown semantics {semantics!r}; known: {known}")
    if counters not in _COUNTER_MODES:
        known = ", ".join(_COUNTER_MODES)
        raise ValueError(f"unknown counter mode {counters!r}; known: {known}")
    if not 0 <= domain.height <= 63:
        raise ValueError(f"domain height {domain.height} exceeds wire format")
    nodes = histogram.nodes
    values = histogram.values
    n = int(nodes.size)
    if n and int(nodes[-1]) >= (1 << (domain.height + 1)):
        raise ValueError(
            f"node {int(nodes[-1])} invalid for height {domain.height}"
        )
    if n and int(nodes[0]) < 1:
        raise ValueError(f"invalid node id {int(nodes[0])}")

    float_mode = counters == "float64"
    if counters == "auto" and n:
        integral = bool(
            np.all(values >= 0.0)
            and np.all(values == np.floor(values))
            and np.all(values < float(1 << 64))
        )
        float_mode = not integral
    if float_mode:
        if n and not np.all(np.isfinite(values)):
            raise ValueError("float64 counters must be finite")
        stride = 8
    else:
        ints: List[int] = []
        for v in values.tolist():
            if v < 0 or v != int(v):
                raise ValueError(
                    f"count {v} is not a nonnegative integer; use the "
                    f"float64 counter mode for weighted histograms"
                )
            ints.append(int(v))
        max_value = max(ints, default=0)
        if counters == "auto":
            stride = _pick_stride(max_value)
        else:
            stride = _MODE_STRIDE[counters]
            if max_value >= (1 << (8 * stride)):
                raise ValueError(
                    f"count {max_value} does not fit in "
                    f"{8 * stride}-bit counter"
                )

    # Totals are omitted when decode can recompute them exactly: the
    # decoder sums the (float64) counter view with the same np.sum the
    # check below uses, so equality here guarantees equality there.
    derivable_total = float(np.sum(values)) if n else 0.0
    has_totals = not (
        histogram.unmatched == 0.0 and histogram.total == derivable_total
    )

    flags = _SEMANTICS_CODES[semantics]
    if float_mode:
        flags |= _FLAG_FLOAT64
    if has_totals:
        flags |= _FLAG_HAS_TOTALS

    body = bytearray()
    _leb_encode(n, body)
    if has_totals:
        body += _TOTALS.pack(histogram.unmatched, histogram.total)
    prev = 0
    for i, node in enumerate(nodes.tolist()):
        _leb_encode(node if i == 0 else node - prev, body)
        prev = node
    if float_mode:
        body += np.ascontiguousarray(values, dtype="<f8").tobytes()
    else:
        body += np.asarray(ints, dtype=_UINT_DTYPES[stride]).tobytes()

    head = MAGIC + bytes([VERSION, flags, domain.height, stride])
    crc = zlib.crc32(bytes(body), zlib.crc32(head))
    return head + struct.pack("<I", crc) + bytes(body)


class WireHistogram:
    """A zero-copy queryable view over a v2 payload.

    Construction validates the whole buffer — header fields, CRC32,
    varint structure, node monotonicity and bounds — and raises
    :class:`ValueError` for *any* truncated or corrupted input; a
    successfully constructed view is safe to query.  The counter
    section is never copied: :attr:`values` is an ``np.frombuffer``
    window into the original buffer, and every query below is a gather
    over it.
    """

    __slots__ = (
        "data",
        "height",
        "semantics",
        "float_counters",
        "stride",
        "nodes",
        "unmatched",
        "total",
        "_counters_off",
        "_values",
    )

    def __init__(self, data) -> None:
        view = memoryview(data)
        if view.nbytes < _HEADER_LEN:
            raise ValueError(
                f"malformed v2 payload: {view.nbytes} bytes is shorter "
                f"than the {_HEADER_LEN}-byte header"
            )
        magic, version, flags, height, stride, crc = _HEADER.unpack_from(
            view, 0
        )
        if magic != MAGIC:
            raise ValueError(
                f"malformed v2 payload: bad magic {bytes(magic)!r}"
            )
        if version != VERSION:
            raise ValueError(
                f"unsupported wire version {version} (expected {VERSION})"
            )
        if flags & _FLAG_RESERVED_MASK:
            raise ValueError(
                f"malformed v2 payload: reserved flag bits set ({flags:#04x})"
            )
        semantics_code = flags & _FLAG_SEMANTICS_MASK
        if semantics_code not in _CODE_SEMANTICS:
            raise ValueError(
                f"malformed v2 payload: bad semantics code {semantics_code}"
            )
        if height > 63:
            raise ValueError(f"malformed v2 payload: height {height} > 63")
        if stride not in _STRIDES:
            raise ValueError(
                f"malformed v2 payload: counter stride {stride} not in "
                f"{_STRIDES}"
            )
        float_counters = bool(flags & _FLAG_FLOAT64)
        if float_counters and stride != 8:
            raise ValueError(
                f"malformed v2 payload: float64 counters need stride 8, "
                f"got {stride}"
            )
        expect = zlib.crc32(
            view[_HEADER_LEN:], zlib.crc32(view[:6])
        )
        if expect != crc:
            raise ValueError(
                f"corrupt v2 payload: CRC mismatch "
                f"(header {crc:#010x}, computed {expect:#010x})"
            )
        buf = view.tobytes() if not isinstance(data, bytes) else data
        pos = _HEADER_LEN
        end = len(buf)
        n, pos = _leb_decode(buf, pos, end)
        unmatched = 0.0
        total: Optional[float] = None
        if flags & _FLAG_HAS_TOTALS:
            if pos + _TOTALS.size > end:
                raise ValueError("malformed v2 payload: truncated totals")
            unmatched, total = _TOTALS.unpack_from(buf, pos)
            if not (np.isfinite(unmatched) and np.isfinite(total)):
                raise ValueError(
                    "malformed v2 payload: non-finite totals"
                )
            pos += _TOTALS.size
        counters_off = end - n * stride
        if counters_off < pos:
            raise ValueError(
                f"malformed v2 payload: {n} counters of stride {stride} "
                f"do not fit in {end - pos} remaining bytes"
            )
        node_limit = 1 << (height + 1)
        nodes = np.empty(n, dtype=np.int64)
        prev = 0
        for i in range(n):
            delta, pos = _leb_decode(buf, pos, counters_off)
            node = delta if i == 0 else prev + delta
            if i == 0 and node < 1:
                raise ValueError("malformed v2 payload: node id 0")
            if i > 0 and delta == 0:
                raise ValueError(
                    "malformed v2 payload: node ids not strictly increasing"
                )
            if node >= node_limit:
                raise ValueError(
                    f"malformed v2 payload: node {node} invalid for "
                    f"height {height}"
                )
            nodes[i] = node
            prev = node
        if pos != counters_off:
            raise ValueError(
                f"malformed v2 payload: {counters_off - pos} stray bytes "
                f"between node and counter sections"
            )
        self.data = buf
        self.height = int(height)
        self.semantics = _CODE_SEMANTICS[semantics_code]
        self.float_counters = float_counters
        self.stride = int(stride)
        self.nodes = nodes
        self._counters_off = counters_off
        self._values: Optional[np.ndarray] = None
        if float_counters and n and not np.all(np.isfinite(self.values)):
            raise ValueError("malformed v2 payload: non-finite counter")
        self.unmatched = float(unmatched)
        if total is None:
            # Recompute with the same operation the encoder checked, so
            # the omitted-totals path is exactly lossless.
            total = float(np.sum(np.asarray(self.values, dtype=np.float64)))
            total = total if n else 0.0
        self.total = float(total)

    # -- the zero-copy counter window -----------------------------------
    @property
    def values(self) -> np.ndarray:
        """The counter section as a numpy view over the raw buffer
        (float64 for weighted payloads, unsigned ints otherwise).  No
        bytes are copied; the array aliases ``self.data``."""
        if self._values is None:
            dtype = "<f8" if self.float_counters else _UINT_DTYPES[self.stride]
            self._values = np.frombuffer(
                self.data, dtype=dtype, count=int(self.nodes.size),
                offset=self._counters_off,
            )
        return self._values

    def __len__(self) -> int:
        return int(self.nodes.size)

    @property
    def size_bytes(self) -> int:
        return len(self.data)

    # -- point / range queries ------------------------------------------
    def count(self, node: int) -> float:
        """The counter at ``node`` (0.0 when the bucket is absent) —
        one binary search plus one buffer read."""
        k = int(np.searchsorted(self.nodes, node))
        if k < self.nodes.size and int(self.nodes[k]) == node:
            return float(self.values[k])
        return 0.0

    def subtree_total(self, node: int) -> float:
        """Sum of all bucket counters inside the subtree of ``node`` —
        a range query straight off the wire bytes.

        A subtree's node ids are contiguous *per depth* (the depth-``d``
        descendants of ``node`` occupy ``[node << k, (node + 1) << k)``
        for ``k = d - depth(node)``), so the query is one
        ``searchsorted`` pair per level below ``node``.
        """
        if node < 1 or node >= (1 << (self.height + 1)):
            raise ValueError(
                f"node {node} invalid for height {self.height}"
            )
        total = 0.0
        depth = UIDDomain.depth(node)
        values = self.values
        for k in range(self.height - depth + 1):
            lo = int(np.searchsorted(self.nodes, node << k))
            hi = int(np.searchsorted(self.nodes, (node + 1) << k))
            if hi > lo:
                total += float(np.sum(values[lo:hi], dtype=np.float64))
        return total

    # -- interop ---------------------------------------------------------
    def to_histogram(self) -> Histogram:
        """Materialize a :class:`~.partition.Histogram` (the naive
        decode path; bit-identical counters by construction)."""
        return Histogram.from_arrays(
            self.nodes.copy(),
            np.asarray(self.values, dtype=np.float64),
            unmatched=self.unmatched,
            total=self.total,
        )

    def merge(self, other: "WireHistogram") -> bytes:
        """Merge two payloads into a new v2 payload without building
        :class:`~.partition.Histogram` objects."""
        return merge_wire([self, other])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "float64" if self.float_counters else f"u{8 * self.stride}"
        return (
            f"WireHistogram({len(self)} buckets, {kind} counters, "
            f"{self.size_bytes} bytes)"
        )


def decode_histogram_v2(data) -> Histogram:
    """Decode a v2 payload into a :class:`~.partition.Histogram` (the
    reference path; :class:`WireHistogram` queries the bytes in place
    instead)."""
    return WireHistogram(data).to_histogram()


def _as_wire(payload) -> WireHistogram:
    return payload if isinstance(payload, WireHistogram) else WireHistogram(
        payload
    )


def merge_wire(payloads: Sequence) -> bytes:
    """Merge v2 payloads (bytes or :class:`WireHistogram` views) into
    one v2 payload.

    Counter accumulation is the same concatenate + ``np.unique`` +
    ``np.bincount`` sequence as :meth:`.partition.Histogram.merge`, and
    totals accumulate in argument order, so the merged counters are
    bit-for-bit what an object-level merge of the decoded histograms
    would produce — mergeability is a property of the format, not a
    decode step.
    """
    views = [_as_wire(p) for p in payloads]
    if not views:
        raise ValueError("merge_wire needs at least one payload")
    height = views[0].height
    semantics = views[0].semantics
    for v in views[1:]:
        if v.height != height:
            raise ValueError(
                f"cannot merge payloads over different domains "
                f"(heights {height} and {v.height})"
            )
        if v.semantics != semantics:
            raise ValueError(
                f"cannot merge payloads with different semantics "
                f"({semantics!r} and {v.semantics!r})"
            )
    unmatched = 0.0
    total = 0.0
    for v in views:
        unmatched += v.unmatched
        total += v.total
    float_mode = any(v.float_counters for v in views)
    if len(views) == 1:
        nodes = views[0].nodes
        sums = np.asarray(views[0].values, dtype=np.float64)
    else:
        all_nodes = np.concatenate([v.nodes for v in views])
        all_values = np.concatenate(
            [np.asarray(v.values, dtype=np.float64) for v in views]
        )
        nodes, inverse = np.unique(all_nodes, return_inverse=True)
        sums = np.bincount(
            inverse, weights=all_values, minlength=nodes.size
        )
    merged = Histogram.from_arrays(nodes, sums, unmatched, total)
    return encode_histogram_v2(
        merged,
        UIDDomain(height),
        semantics=semantics,
        counters="float64" if float_mode else "auto",
    )
