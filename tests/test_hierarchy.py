"""Tests for the pruned hierarchy (Steiner tree + zero summaries)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import GroupTable, PrunedHierarchy, UIDDomain

from helpers import random_cut, random_instance


class TestStructure:
    def test_single_nonzero_group(self):
        dom = UIDDomain(4)
        table = GroupTable(dom, [dom.node(4, p) for p in range(16)])
        counts = np.zeros(16)
        counts[5] = 10.0
        h = PrunedHierarchy(table, counts)
        assert h.num_nonzero_groups == 1
        assert h.root.n_groups == 16
        assert h.root.tuples == 10.0
        # the single group leaf is present
        assert len(h.leaves) == 1
        assert h.leaves[0].group_index == 5

    def test_all_zero_window(self):
        dom = UIDDomain(3)
        table = GroupTable(dom, [dom.node(1, 0), dom.node(1, 1)])
        h = PrunedHierarchy(table, np.zeros(2))
        assert h.root.kind == "zero"
        assert h.root.n_groups == 2
        assert h.num_nonzero_groups == 0

    def test_count_shape_rejected(self):
        dom = UIDDomain(3)
        table = GroupTable(dom, [dom.node(1, 0), dom.node(1, 1)])
        with pytest.raises(ValueError):
            PrunedHierarchy(table, np.zeros(3))

    def test_negative_counts_rejected(self):
        dom = UIDDomain(3)
        table = GroupTable(dom, [dom.node(1, 0), dom.node(1, 1)])
        with pytest.raises(ValueError):
            PrunedHierarchy(table, np.array([1.0, -2.0]))

    def test_postorder_children_before_parents(self, small_hierarchy):
        seen = set()
        for p in small_hierarchy.nodes:
            for c in p.children():
                assert c.index in seen
            seen.add(p.index)

    def test_leaf_kinds(self, small_hierarchy):
        for p in small_hierarchy.nodes:
            if p.is_leaf:
                assert p.kind in ("group", "zero")
            else:
                assert p.kind == "branch"
                assert p.left is not None and p.right is not None

    def test_group_leaves_are_nonzero(self, small_hierarchy):
        for leaf in small_hierarchy.leaves:
            assert leaf.tuples > 0
            assert leaf.n_groups == 1
            assert leaf.n_nonzero == 1


class TestAggregates:
    @pytest.mark.parametrize("seed", range(25))
    def test_aggregates_match_table(self, seed):
        """Every pruned node's aggregates must equal direct queries of
        the group table over its subtree."""
        _dom, table, counts = random_instance(seed)
        h = PrunedHierarchy(table, counts)
        for p in h.nodes:
            idx = table.group_indices_below(p.node)
            assert p.n_groups == idx.size
            assert p.n_nonzero == int((counts[idx] > 0).sum())
            assert p.tuples == pytest.approx(float(counts[idx].sum()))

    @pytest.mark.parametrize("seed", range(25))
    def test_zero_nodes_partition_zero_groups(self, seed):
        """Zero summaries and group leaves together account for every
        group exactly once."""
        _dom, table, counts = random_instance(seed)
        h = PrunedHierarchy(table, counts)
        zero_total = sum(p.n_groups for p in h.nodes if p.kind == "zero")
        group_total = sum(1 for p in h.nodes if p.kind == "group")
        assert zero_total + group_total == len(table)
        assert group_total == int((counts > 0).sum())

    @pytest.mark.parametrize("seed", range(10))
    def test_children_disjoint(self, seed):
        _dom, table, counts = random_instance(seed)
        h = PrunedHierarchy(table, counts)
        for p in h.nodes:
            if not p.is_leaf:
                lr = table.domain.uid_range(p.left.node)
                rr = table.domain.uid_range(p.right.node)
                assert lr[1] <= rr[0]  # ordered, disjoint
                assert UIDDomain.is_ancestor(p.node, p.left.node)
                assert UIDDomain.is_ancestor(p.node, p.right.node)

    def test_density(self, small_hierarchy):
        root = small_hierarchy.root
        assert root.density == pytest.approx(root.tuples / root.n_groups)

    def test_group_counts_below(self, small_hierarchy):
        h = small_hierarchy
        got = h.group_counts_below(h.root)
        assert got.sum() == pytest.approx(h.total_tuples)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_hierarchy_size_linear_in_nonzero(seed):
    """|pruned nodes| is O(nonzero groups x height) and every node is
    either a leaf or has two children (no unary chains survive unless
    they carry zero attachments)."""
    rng = np.random.default_rng(seed)
    height = int(rng.integers(2, 8))
    dom = UIDDomain(height)
    table = GroupTable(dom, random_cut(rng, height))
    counts = rng.integers(0, 5, len(table)).astype(float)
    h = PrunedHierarchy(table, counts)
    nonzero = int((counts > 0).sum())
    if nonzero:
        assert len(h.nodes) <= 2 * nonzero * (height + 1)
    for p in h.nodes:
        assert p.is_leaf or (p.left is not None and p.right is not None)
