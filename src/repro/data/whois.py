"""Synthetic WHOIS-style subnet tables (paper Section 5, Figure 15).

The paper merges the RIPE and APNIC WHOIS dumps into 1.1 million
nonoverlapping IPv4 prefixes that completely cover the address space,
with lengths from /3 to /32 and pronounced spikes at the old classful
boundaries /8, /16 and /24 (Figure 15).  Those dumps are not
redistributable, so this module generates a synthetic table with the
same structural properties at any scale:

* the prefixes are produced by recursively splitting the address space,
  so they are nonoverlapping and cover it completely by construction;
* the probability of *stopping* a split is boosted at (scaled) classful
  depths, reproducing the spiky length distribution;
* everything is driven by a seeded generator — tables are reproducible.

What matters to the histogram algorithms is exactly this structure (a
covering, nonoverlapping prefix set with a skewed, spiky length
distribution), which is why the substitution preserves the evaluation's
behaviour; see DESIGN.md §4.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..core.domain import ROOT, UIDDomain
from ..core.groups import GroupTable

__all__ = ["generate_subnet_table", "prefix_length_distribution"]


def generate_subnet_table(
    domain: UIDDomain,
    seed: int = 0,
    min_depth: Optional[int] = None,
    spike_depths: Optional[Sequence[int]] = None,
    spike_stop: Union[float, Sequence[float]] = (0.25, 0.35, 0.65),
    base_stop: float = 0.04,
    depth_ramp: float = 0.012,
    label: str = "subnet",
) -> GroupTable:
    """Generate a covering, nonoverlapping subnet table.

    Parameters
    ----------
    domain:
        Identifier domain; ``UIDDomain(32)`` reproduces full IPv4 (use
        smaller heights for laptop-scale experiments).
    seed:
        Seed for reproducible tables.
    min_depth:
        No prefix shorter than this (paper: /3).  Defaults to a scaled
        ``3 * height / 32``.
    spike_depths:
        Depths with boosted stop probability.  Defaults to the scaled
        classful boundaries ``height/4``, ``height/2``, ``3*height/4``
        (i.e. /8, /16, /24 for IPv4).
    spike_stop / base_stop / depth_ramp:
        Stop probability at spike depths (a scalar, or one value per
        spike — the default makes the deepest, /24-analog spike the
        strongest as in Figure 15), away from them, and its per-level
        growth — together these control the table size and the
        spikiness of the length distribution.
    label:
        Group-id prefix; group ids are ``f"{label}-{prefix_pattern}"``.

    Returns
    -------
    GroupTable
        Covers the domain; group per generated prefix.
    """
    height = domain.height
    if height < 2:
        raise ValueError("subnet generation needs a domain of height >= 2")
    if min_depth is None:
        min_depth = max(1, round(3 * height / 32))
    if spike_depths is None:
        spike_depths = sorted(
            {max(1, round(height * f)) for f in (0.25, 0.5, 0.75)}
        )
    if isinstance(spike_stop, (int, float)):
        spike_stop = [float(spike_stop)] * len(spike_depths)
    if len(spike_stop) != len(spike_depths):
        raise ValueError(
            f"{len(spike_stop)} spike strengths for {len(spike_depths)} spikes"
        )
    spikes = {d: s for d, s in zip(spike_depths, spike_stop)}
    rng = np.random.default_rng(seed)
    leaves: List[int] = []
    stack = [ROOT]
    while stack:
        node = stack.pop()
        depth = UIDDomain.depth(node)
        if depth >= height:
            leaves.append(node)
            continue
        if depth < min_depth:
            stop = 0.0
        elif depth in spikes:
            stop = spikes[depth]
        else:
            stop = min(0.95, base_stop + depth_ramp * (depth - min_depth))
        if rng.random() < stop:
            leaves.append(node)
        else:
            stack.extend(UIDDomain.children(node))
    leaves.sort(key=domain.uid_range)
    ids = [f"{label}-{domain.node_prefix_str(n)}" for n in leaves]
    table = GroupTable(domain, leaves, ids)
    assert table.covers_domain()
    return table


def prefix_length_distribution(table: GroupTable) -> Dict[int, int]:
    """Prefixes per length — the series plotted in Figure 15."""
    out: Dict[int, int] = {}
    for node in table.nodes.tolist():
        d = UIDDomain.depth(int(node))
        out[d] = out.get(d, 0) + 1
    return out
