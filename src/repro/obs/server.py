"""Live metric surfaces: a background ``/metrics`` endpoint and a
periodic snapshot writer.

Both are pure stdlib and strictly opt-in — nothing here is imported on
a hot path, and neither touches a registry that is not explicitly
handed to it.

* :class:`MetricsServer` — a daemon-threaded
  :class:`~http.server.ThreadingHTTPServer` exposing

  * ``/metrics`` — the registry in Prometheus exposition format
    (what ``repro simulate --serve-metrics :9100`` serves, scrapeable
    mid-run);
  * ``/series.json`` — the per-window snapshot-delta series
    (:mod:`repro.obs.snapshots`), the data source for
    ``repro top http://host:port``; ``?since=N`` returns only the
    records from index ``N`` on, so pollers fetch each window once;
  * ``/alerts.json`` — the SLO engine's rules, active alerts and
    alert history (:mod:`repro.obs.slo`; an empty document when no
    engine is attached);
  * ``/shards.json`` — per-shard / per-tenant rollups of every
    ``shard=`` / ``tenant=`` labelled series
    (:func:`~repro.obs.crossproc.shard_tenant_summary`), the data
    source for the shards/tenants panes of ``repro top``;
  * ``/healthz`` — liveness probe.

  Unknown paths get a JSON 404 body (``{"error": "not found", ...}``)
  so programmatic pollers fail loudly and parseably.

  Binding port 0 picks an ephemeral port (exposed as ``.port`` after
  :meth:`~MetricsServer.start`), which is what the tests use.

* :class:`PeriodicMetricsWriter` — a daemon thread re-rendering the
  registry to a file every ``interval`` seconds
  (``--metrics-interval``), so an external collector can tail a
  long run without speaking HTTP.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from .crossproc import shard_tenant_summary
from .export import to_prometheus, write_metrics
from .registry import MetricsRegistry
from .slo import NULL_SLO_ENGINE

__all__ = [
    "MetricsServer",
    "PeriodicMetricsWriter",
    "parse_serve_spec",
]


def parse_serve_spec(spec: str) -> Tuple[str, int]:
    """Parse a ``--serve-metrics`` spec: ``:9100``, ``9100`` or
    ``host:9100`` (default host ``127.0.0.1``)."""
    spec = spec.strip()
    host, sep, port_text = spec.rpartition(":")
    if not sep:
        host, port_text = "", spec
    host = host or "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"bad --serve-metrics spec {spec!r}: expected [host]:port"
        )
    if not 0 <= port <= 65535:
        raise ValueError(f"port out of range in --serve-metrics {spec!r}")
    return host, port


class _MetricsHandler(BaseHTTPRequestHandler):
    """Request handler bound to one registry via the server object."""

    server_version = "repro-metrics/1"

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        registry: MetricsRegistry = self.server.registry  # type: ignore
        parts = urlsplit(self.path)
        path = parts.path
        if path == "/metrics":
            body = to_prometheus(registry).encode("utf-8")
            self._send(
                200, "text/plain; version=0.0.4; charset=utf-8", body
            )
        elif path == "/series.json":
            since = 0
            raw = parse_qs(parts.query).get("since", ["0"])[-1]
            try:
                since = max(0, int(raw))
            except ValueError:
                self._send(
                    400, "application/json",
                    json.dumps(
                        {"error": "bad since parameter", "since": raw}
                    ).encode("utf-8") + b"\n",
                )
                return
            with registry._lock:
                series = list(registry.window_series[since:])
            body = json.dumps(series).encode("utf-8")
            self._send(200, "application/json", body)
        elif path == "/alerts.json":
            slo = getattr(self.server, "slo", None) or NULL_SLO_ENGINE
            body = json.dumps(slo.as_json(), sort_keys=True).encode("utf-8")
            self._send(200, "application/json", body)
        elif path == "/shards.json":
            body = json.dumps(
                shard_tenant_summary(registry), sort_keys=True
            ).encode("utf-8")
            self._send(200, "application/json", body)
        elif path in ("/", "/healthz"):
            self._send(200, "text/plain; charset=utf-8", b"ok\n")
        else:
            body = json.dumps(
                {
                    "error": "not found",
                    "path": path,
                    "endpoints": [
                        "/metrics", "/series.json", "/alerts.json",
                        "/shards.json", "/healthz",
                    ],
                }
            ).encode("utf-8") + b"\n"
            self._send(404, "application/json", body)

    def log_message(self, format: str, *args) -> None:
        """Silence per-request stderr logging (a scraper polling every
        second would otherwise bury the run's own output)."""


class MetricsServer:
    """A background HTTP server over one metrics registry."""

    def __init__(
        self,
        registry: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        slo=None,
    ) -> None:
        self.registry = registry
        self.host = host
        self.requested_port = port
        self.port: Optional[int] = None
        #: SLO engine served at ``/alerts.json`` (``None`` -> empty doc).
        self.slo = slo
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "MetricsServer":
        """Bind and serve in a daemon thread; returns self (``.port``
        holds the bound port, useful with port 0)."""
        if self._httpd is not None:
            return self
        httpd = ThreadingHTTPServer(
            (self.host, self.requested_port), _MetricsHandler
        )
        httpd.daemon_threads = True
        httpd.registry = self.registry  # type: ignore[attr-defined]
        httpd.slo = self.slo  # type: ignore[attr-defined]
        self._httpd = httpd
        self.port = httpd.server_address[1]
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class PeriodicMetricsWriter:
    """Re-render a registry to ``path`` every ``interval`` seconds in a
    daemon thread (plus once on :meth:`stop`, so the file always ends
    at the final state)."""

    def __init__(
        self,
        registry: MetricsRegistry,
        path: str,
        fmt: str = "json",
        interval: float = 5.0,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.registry = registry
        self.path = path
        self.fmt = fmt
        self.interval = interval
        self.writes = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _write(self) -> None:
        write_metrics(self.registry, self.path, self.fmt)
        self.writes += 1

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self._write()

    def start(self) -> "PeriodicMetricsWriter":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop,
                name="repro-metrics-writer",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self._write()

    def __enter__(self) -> "PeriodicMetricsWriter":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
