"""Multi-tenant serving: admission control, byte budgets, shared caches.

A *tenant* is one grouped-aggregation deployment — a budget, an
algorithm, and optionally a declared wire-byte budget — served over a
(shared) group table.  :class:`ServingEngine` runs a fleet of tenants
through the sharded pipeline with:

* **admission control** — under a ``capacity_bytes`` ceiling a tenant
  must declare a byte budget and the sum of admitted budgets may not
  exceed the ceiling; rejected tenants never build a system
  (``tenant.admitted`` / ``tenant.rejected`` journal events);
* **byte-budget enforcement** — after a run, a tenant whose actual
  upstream + downstream bytes exceeded its declared budget is flagged
  ``over_budget`` (``tenant.over_budget`` journal event and
  ``serving.tenant.over_budget`` counter);
* **cross-tenant reuse** — all tenants share one
  :class:`~.cache.SharedServingCache`: equal tables collapse to one
  canonical instance (compiled partitioners/estimators shared via the
  identity-keyed caches) and equal rebuild inputs reuse the finished
  function or incremental memo instead of re-running the DP;
* **labelled observability** — every ``serving.tenant.*`` metric and
  tenant journal event carries a ``tenant=`` label; shard metrics from
  the prefetch pass carry ``shard=`` (and ``tenant=``) labels.

Tenant specs parse from a compact CLI string::

    alpha:budget=100,bytes=65536;beta:algorithm=nonoverlapping,budget=64

(see :meth:`TenantSpec.parse_many`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.errors import PenaltyMetric
from ..core.groups import GroupTable
from ..obs import (
    export_resources,
    get_journal,
    get_registry,
    sample_resources,
)
from ..streams.system import MonitoringSystem, SystemReport
from ..streams.tuples import Trace
from .cache import SharedServingCache
from .sharded import ShardedMonitoringSystem

__all__ = ["ServingEngine", "TenantReport", "TenantSpec"]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's configuration."""

    name: str
    algorithm: str = "lpm_greedy"
    budget: int = 100
    #: Declared wire-byte budget (upstream histograms + downstream
    #: installs) — required for admission under a capacity ceiling,
    #: enforced post-run as an ``over_budget`` flag.
    byte_budget: Optional[int] = None
    #: Split seed for the tenant's live run.
    seed: int = 0

    _KEYS = ("algorithm", "budget", "bytes", "byte_budget", "seed")

    @classmethod
    def parse(cls, text: str) -> "TenantSpec":
        """Parse ``name[:key=value,...]`` — keys ``algorithm``,
        ``budget``, ``bytes`` (alias ``byte_budget``), ``seed``."""
        name, _, options = text.strip().partition(":")
        name = name.strip()
        if not name:
            raise ValueError(f"tenant spec {text!r} has no name")
        kwargs: Dict[str, object] = {}
        if options.strip():
            for item in options.split(","):
                key, sep, value = item.partition("=")
                key, value = key.strip().lower(), value.strip()
                if not sep or not key or not value:
                    raise ValueError(
                        f"tenant option {item.strip()!r} is not key=value "
                        f"(tenant {name!r})"
                    )
                if key == "algorithm":
                    kwargs["algorithm"] = value
                elif key in ("budget", "bytes", "byte_budget", "seed"):
                    try:
                        number = int(value)
                    except ValueError:
                        raise ValueError(
                            f"tenant option {key}={value!r} is not an "
                            f"integer (tenant {name!r})"
                        ) from None
                    if key == "budget":
                        kwargs["budget"] = number
                    elif key == "seed":
                        kwargs["seed"] = number
                    else:
                        kwargs["byte_budget"] = number
                else:
                    raise ValueError(
                        f"unknown tenant option {key!r} (tenant {name!r}); "
                        f"known keys: {', '.join(cls._KEYS)}"
                    )
        return cls(name=name, **kwargs)

    @classmethod
    def parse_many(cls, spec: str) -> List["TenantSpec"]:
        """Parse a ``;``-separated list of tenant specs."""
        specs = [cls.parse(part) for part in spec.split(";") if part.strip()]
        if not specs:
            raise ValueError(f"no tenants in spec {spec!r}")
        seen = set()
        for s in specs:
            if s.name in seen:
                raise ValueError(f"duplicate tenant name {s.name!r}")
            seen.add(s.name)
        return specs


@dataclass
class TenantReport:
    """Outcome of one tenant's run (or rejection)."""

    spec: TenantSpec
    admitted: bool
    #: Why admission rejected the tenant (empty when admitted).
    reason: str = ""
    report: Optional[SystemReport] = None
    #: Actual wire bytes: upstream histograms + downstream installs.
    bytes_used: int = 0
    over_budget: bool = False


class ServingEngine:
    """Admission-controlled multi-tenant serving over shared caches.

    Parameters
    ----------
    table, metric:
        The grouped-aggregation deployment every tenant serves.  The
        table is canonicalized through the shared cache, so passing
        equal-content table instances for different engines sharing one
        ``cache`` still collapses compiled state.
    tenants:
        :class:`TenantSpec` sequence, or a spec string for
        :meth:`TenantSpec.parse_many`.
    shards:
        ``> 1`` serves every tenant through
        :class:`~.sharded.ShardedMonitoringSystem`; ``1`` uses the
        serial :class:`~repro.streams.MonitoringSystem` (reports are
        bit-identical either way).
    capacity_bytes:
        Optional admission ceiling on the sum of declared tenant byte
        budgets.
    cache:
        A :class:`~.cache.SharedServingCache` to share with other
        engines; a private one is created by default.
    system_options:
        Passed through to every tenant's system (``num_monitors``,
        ``faults``, ``incremental``, ``cache_size``, ...).
    """

    def __init__(
        self,
        table: GroupTable,
        metric: PenaltyMetric,
        tenants: Union[str, Sequence[TenantSpec]],
        shards: int = 1,
        capacity_bytes: Optional[int] = None,
        cache: Optional[SharedServingCache] = None,
        **system_options,
    ) -> None:
        if isinstance(tenants, str):
            tenants = TenantSpec.parse_many(tenants)
        tenants = list(tenants)
        if not tenants:
            raise ValueError("need at least one tenant")
        if len({t.name for t in tenants}) != len(tenants):
            raise ValueError("tenant names must be unique")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.cache = cache if cache is not None else SharedServingCache()
        self.table = self.cache.canonical_table(table)
        self.metric = metric
        self.shards = shards
        self.capacity_bytes = capacity_bytes
        self.tenants = tenants
        self.admitted: List[TenantSpec] = []
        self.rejected: List[Tuple[TenantSpec, str]] = []
        registry = get_registry()
        journal = get_journal()
        committed = 0
        for spec in tenants:
            reason = ""
            if capacity_bytes is not None:
                if spec.byte_budget is None:
                    reason = (
                        "no byte budget declared under capacity control"
                    )
                elif committed + spec.byte_budget > capacity_bytes:
                    reason = (
                        f"capacity exceeded: {committed} committed + "
                        f"{spec.byte_budget} declared > {capacity_bytes}"
                    )
            if reason:
                self.rejected.append((spec, reason))
                if registry.enabled:
                    registry.counter(
                        "serving.tenants.rejected", tenant=spec.name
                    ).inc()
                if journal.enabled:
                    journal.emit(
                        "tenant.rejected", tenant=spec.name, reason=reason
                    )
                continue
            if spec.byte_budget is not None:
                committed += spec.byte_budget
            self.admitted.append(spec)
            if registry.enabled:
                registry.counter(
                    "serving.tenants.admitted", tenant=spec.name
                ).inc()
            if journal.enabled:
                journal.emit(
                    "tenant.admitted",
                    tenant=spec.name,
                    byte_budget=spec.byte_budget,
                    committed_bytes=committed,
                )
        self.systems: Dict[str, MonitoringSystem] = {}
        for spec in self.admitted:
            if shards > 1:
                self.systems[spec.name] = ShardedMonitoringSystem(
                    self.table,
                    metric,
                    shards=shards,
                    tenant=spec.name,
                    algorithm=spec.algorithm,
                    budget=spec.budget,
                    shared_cache=self.cache,
                    **system_options,
                )
            else:
                self.systems[spec.name] = MonitoringSystem(
                    self.table,
                    metric,
                    algorithm=spec.algorithm,
                    budget=spec.budget,
                    shared_cache=self.cache,
                    **system_options,
                )

    def run(
        self,
        history: Trace,
        live: Trace,
        window_width: float,
    ) -> Dict[str, TenantReport]:
        """Train and run every admitted tenant; returns per-tenant
        reports keyed by tenant name (rejected tenants included with
        ``admitted=False``)."""
        registry = get_registry()
        journal = get_journal()
        results: Dict[str, TenantReport] = {}
        for spec in self.admitted:
            system = self.systems[spec.name]
            system.train(history)
            report = system.run(live, window_width, split_seed=spec.seed)
            bytes_used = report.upstream_bytes + report.function_bytes
            over = (
                spec.byte_budget is not None
                and bytes_used > spec.byte_budget
            )
            results[spec.name] = TenantReport(
                spec=spec,
                admitted=True,
                report=report,
                bytes_used=bytes_used,
                over_budget=over,
            )
            if registry.enabled:
                registry.counter(
                    "serving.tenant.windows", tenant=spec.name
                ).inc(len(report.windows))
                registry.counter(
                    "serving.tenant.bytes", tenant=spec.name
                ).inc(bytes_used)
                registry.gauge(
                    "serving.tenant.mean_error", tenant=spec.name
                ).set(report.mean_error)
                if over:
                    registry.counter(
                        "serving.tenant.over_budget", tenant=spec.name
                    ).inc()
            if journal.enabled:
                if over:
                    journal.emit(
                        "tenant.over_budget",
                        tenant=spec.name,
                        bytes_used=bytes_used,
                        byte_budget=spec.byte_budget,
                    )
                journal.emit(
                    "tenant.report",
                    tenant=spec.name,
                    windows=len(report.windows),
                    bytes_used=bytes_used,
                    byte_budget=spec.byte_budget,
                    mean_error=report.mean_error,
                    over_budget=over,
                )
        for spec, reason in self.rejected:
            results[spec.name] = TenantReport(
                spec=spec, admitted=False, reason=reason
            )
        # Fleet-level telemetry: cross-tenant cache effectiveness as
        # serving.cache.* counters (delta-published, so multi-run
        # engines stay monotonic) and the control plane's own resource
        # usage next to the shard workers' proc.* series.
        self.cache.publish_metrics(registry)
        if registry.enabled:
            export_resources(registry, sample_resources(), shard="parent")
        return results

    def close(self) -> None:
        """Shut down every tenant system's shard worker pool."""
        for system in self.systems.values():
            close = getattr(system, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
