"""Tests for the workload generators (WHOIS tables, traffic, RFID)."""

import numpy as np
import pytest

from repro import UIDDomain
from repro.data import (
    EPCScheme,
    TrafficModel,
    generate_epc_population,
    generate_subnet_table,
    generate_timestamped_trace,
    generate_trace,
    prefix_length_distribution,
)


class TestSubnetTable:
    def test_covers_and_nonoverlapping(self):
        table = generate_subnet_table(UIDDomain(12), seed=1)
        assert table.covers_domain()  # construction guarantees both

    def test_deterministic(self):
        t1 = generate_subnet_table(UIDDomain(10), seed=7)
        t2 = generate_subnet_table(UIDDomain(10), seed=7)
        assert list(t1.nodes) == list(t2.nodes)

    def test_seeds_differ(self):
        t1 = generate_subnet_table(UIDDomain(10), seed=7)
        t2 = generate_subnet_table(UIDDomain(10), seed=8)
        assert list(t1.nodes) != list(t2.nodes)

    def test_min_depth_respected(self):
        table = generate_subnet_table(UIDDomain(12), seed=3, min_depth=4)
        dist = prefix_length_distribution(table)
        assert min(dist) >= 4

    def test_spikes_visible(self):
        """The classful spike depths must be locally elevated —
        the Figure 15 shape."""
        table = generate_subnet_table(UIDDomain(16), seed=42)
        dist = prefix_length_distribution(table)
        spike = 8  # height/2
        neighbors = [dist.get(spike - 1, 0), dist.get(spike + 1, 0)]
        assert dist.get(spike, 0) > max(neighbors)

    def test_group_ids_are_prefix_patterns(self):
        table = generate_subnet_table(UIDDomain(8), seed=0, label="net")
        assert all(str(g).startswith("net-") for g in table.group_ids)

    def test_spike_strength_mismatch_rejected(self):
        with pytest.raises(ValueError):
            generate_subnet_table(
                UIDDomain(12), spike_depths=[3, 6], spike_stop=(0.5,)
            )

    def test_tiny_domain_rejected(self):
        with pytest.raises(ValueError):
            generate_subnet_table(UIDDomain(1))


class TestTraffic:
    @pytest.fixture
    def table(self):
        return generate_subnet_table(UIDDomain(12), seed=5)

    def test_all_uids_in_domain(self, table):
        uids = generate_trace(table, 5000, seed=1)
        assert uids.min() >= 0
        assert uids.max() < table.domain.num_uids

    def test_sparsity(self, table):
        model = TrafficModel(mode="zipf", active_fraction=0.1)
        uids = generate_trace(table, 20000, seed=2, model=model)
        counts = table.counts_from_uids(uids)
        active = int((counts > 0).sum())
        assert active <= int(len(table) * 0.1) + 1

    def test_skew(self, table):
        """Zipf-1.2 traffic concentrates: the busiest 10% of active
        subnets should carry the majority of packets."""
        uids = generate_trace(
            table, 50000, seed=3,
            model=TrafficModel(mode="zipf", active_fraction=0.2, zipf_exponent=1.2),
        )
        counts = np.sort(table.counts_from_uids(uids))[::-1]
        active = counts[counts > 0]
        top = active[: max(1, len(active) // 10)].sum()
        assert top / active.sum() > 0.5

    def test_deterministic(self, table):
        a = generate_trace(table, 1000, seed=9)
        b = generate_trace(table, 1000, seed=9)
        assert np.array_equal(a, b)

    def test_counts_sum(self, table):
        uids = generate_trace(table, 1234, seed=0)
        assert table.counts_from_uids(uids).sum() == 1234

    def test_timestamped_sorted(self, table):
        ts, uids = generate_timestamped_trace(table, 500, duration=10.0, seed=1)
        assert np.all(np.diff(ts) >= 0)
        assert ts.max() < 10.0
        assert len(ts) == len(uids) == 500

    def test_bad_params_rejected(self, table):
        with pytest.raises(ValueError):
            TrafficModel(active_fraction=0.0)
        with pytest.raises(ValueError):
            TrafficModel(zipf_exponent=-1.0)
        with pytest.raises(ValueError):
            generate_trace(table, -5)
        with pytest.raises(ValueError):
            generate_timestamped_trace(table, 5, duration=0.0)


class TestRFID:
    def test_encode_decode_roundtrip(self):
        s = EPCScheme(num_managers=12, num_classes=10, serial_bits=6)
        for m, c, ser in [(0, 0, 0), (11, 9, 63), (5, 3, 17)]:
            assert s.decode(s.encode(m, c, ser)) == (m, c, ser)

    def test_encode_rejects_out_of_range(self):
        s = EPCScheme(num_managers=4, num_classes=4, serial_bits=4)
        with pytest.raises(ValueError):
            s.encode(4, 0, 0)
        with pytest.raises(ValueError):
            s.encode(0, 4, 0)
        with pytest.raises(ValueError):
            s.encode(0, 0, 16)

    def test_group_table_structure(self):
        s = EPCScheme(num_managers=3, num_classes=5, serial_bits=4)
        t = s.group_table()
        assert len(t) == 15
        # non-power-of-two fanouts leave unassigned space
        assert not t.covers_domain()

    def test_population_lands_in_groups(self):
        s = EPCScheme(num_managers=6, num_classes=4, serial_bits=5)
        tags = generate_epc_population(s, 2000, seed=1)
        t = s.group_table()
        counts = t.counts_from_uids(tags)
        assert counts.sum() == 2000  # nothing falls in unassigned space

    def test_manager_skew(self):
        s = EPCScheme(num_managers=10, num_classes=2, serial_bits=4)
        tags = generate_epc_population(s, 20000, seed=2, manager_skew=1.5)
        managers = tags >> (s.class_bits + s.serial_bits)
        counts = np.bincount(managers, minlength=10)
        assert counts[0] > counts[9]

    def test_bad_scheme_rejected(self):
        with pytest.raises(ValueError):
            EPCScheme(num_managers=0)
        with pytest.raises(ValueError):
            EPCScheme(serial_bits=-1)
        with pytest.raises(ValueError):
            generate_epc_population(EPCScheme(), -1)
