"""Synthetic RFID/EPC identifier populations.

RFID tag identifiers (EPC codes) are the paper's second motivating UID
family (frozen chickens in the supply chain, Section 1): a tag id is a
manager number (the manufacturer), an object class (the product) and a
serial number — contiguous blocks assigned hierarchically, exactly the
structure the histograms exploit.  Fanouts are not powers of two, so
this workload also exercises the arbitrary-hierarchy conversion of
Section 4.1: unassigned codes become uncovered identifier space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..core.domain import UIDDomain
from ..core.groups import GroupTable

__all__ = ["EPCScheme", "generate_epc_population"]


@dataclass(frozen=True)
class EPCScheme:
    """An EPC-like identifier layout.

    ``num_managers`` manufacturers, each with ``num_classes`` product
    classes, each class with ``2**serial_bits`` serials.  Manager and
    class counts need not be powers of two — the binary encoding leaves
    the surplus codes unallocated.
    """

    num_managers: int = 12
    num_classes: int = 10
    serial_bits: int = 10

    def __post_init__(self) -> None:
        if self.num_managers < 1 or self.num_classes < 1:
            raise ValueError("need at least one manager and one class")
        if self.serial_bits < 0:
            raise ValueError("serial_bits must be nonnegative")

    @property
    def manager_bits(self) -> int:
        return max(1, math.ceil(math.log2(self.num_managers)))

    @property
    def class_bits(self) -> int:
        return max(1, math.ceil(math.log2(self.num_classes)))

    @property
    def domain(self) -> UIDDomain:
        return UIDDomain(self.manager_bits + self.class_bits + self.serial_bits)

    def encode(self, manager: int, cls: int, serial: int) -> int:
        """The identifier of one tag."""
        if not 0 <= manager < self.num_managers:
            raise ValueError(f"manager {manager} out of range")
        if not 0 <= cls < self.num_classes:
            raise ValueError(f"class {cls} out of range")
        if not 0 <= serial < (1 << self.serial_bits):
            raise ValueError(f"serial {serial} out of range")
        return (
            (manager << (self.class_bits + self.serial_bits))
            | (cls << self.serial_bits)
            | serial
        )

    def decode(self, uid: int) -> Tuple[int, int, int]:
        serial = uid & ((1 << self.serial_bits) - 1)
        cls = (uid >> self.serial_bits) & ((1 << self.class_bits) - 1)
        manager = uid >> (self.class_bits + self.serial_bits)
        return manager, cls, serial

    def class_node(self, manager: int, cls: int) -> int:
        """The hierarchy node of one (manager, class) block."""
        dom = self.domain
        depth = self.manager_bits + self.class_bits
        prefix = (manager << self.class_bits) | cls
        return dom.node(depth, prefix)

    def group_table(self) -> GroupTable:
        """Lookup table grouping tags by (manager, class) — the
        "breakdown by wholesaler and product" query of the paper's
        introduction.  Unassigned codes are uncovered space."""
        nodes: List[int] = []
        ids: List[str] = []
        for m in range(self.num_managers):
            for c in range(self.num_classes):
                nodes.append(self.class_node(m, c))
                ids.append(f"mgr{m}/cls{c}")
        return GroupTable(self.domain, nodes, ids)


def generate_epc_population(
    scheme: EPCScheme,
    num_reads: int,
    seed: int = 0,
    manager_skew: float = 1.1,
    class_skew: float = 0.8,
) -> np.ndarray:
    """A stream of tag-read identifiers.

    Managers and classes are sampled with Zipf skew (large wholesalers
    dominate), serials uniformly.
    """
    if num_reads < 0:
        raise ValueError(f"num_reads must be nonnegative, got {num_reads}")
    rng = np.random.default_rng(seed)

    def zipf_weights(n: int, s: float) -> np.ndarray:
        w = (np.arange(1, n + 1, dtype=np.float64)) ** (-s)
        return w / w.sum()

    managers = rng.choice(
        scheme.num_managers, size=num_reads,
        p=zipf_weights(scheme.num_managers, manager_skew),
    )
    classes = rng.choice(
        scheme.num_classes, size=num_reads,
        p=zipf_weights(scheme.num_classes, class_skew),
    )
    serials = rng.integers(0, 1 << scheme.serial_bits, size=num_reads)
    shift_c = scheme.serial_bits
    shift_m = scheme.class_bits + scheme.serial_bits
    return (managers.astype(np.int64) << shift_m) | (
        classes.astype(np.int64) << shift_c
    ) | serials.astype(np.int64)
