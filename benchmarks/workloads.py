"""Shared workloads and reporting helpers for the bench harness.

The paper's evaluation (Section 5) runs against 1.1M WHOIS-derived
subnets and a 7M-packet dark-address trace on the full IPv4 space.  The
bench harness uses the same *pipeline* on a scaled synthetic workload
(see DESIGN.md §4 for the substitution argument):

* an 18-bit identifier domain with a ~10k-subnet covering table whose
  prefix-length distribution has the classful spikes of Figure 15;
* a 2M-packet multiplicative-cascade trace: heavy-tailed and spatially
  correlated per-subnet loads, sparse at the group level (Figure 16).

Every figure bench reads the same cached workload, sweeps the same
bucket grid, and appends its series to ``benchmarks/results/`` so
EXPERIMENTS.md can quote measured numbers.
"""

from __future__ import annotations

import functools
import os
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro import GroupTable, PrunedHierarchy, UIDDomain, get_metric
from repro.data import TrafficModel, generate_subnet_table, generate_trace

#: Bucket-count grid for the Figure 17-20 sweeps (the paper sweeps
#: 10..1000; the curve shape is established by these points).
BUDGETS: List[int] = [10, 20, 50, 100, 200, 350, 500]

#: Reduced grid for the expensive quantized heuristic.
QUANTIZED_BUDGETS: List[int] = [10, 20, 50, 100]

#: Quantized-heuristic bench parameters (coarse grid, narrow beam —
#: the paper itself positions it as the scalable approximation).
QUANTIZED_THETA = 2.0
QUANTIZED_BEAM = 2

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@dataclass(frozen=True)
class FigureWorkload:
    """The standard evaluation workload shared by the figure benches."""

    table: GroupTable
    counts: np.ndarray
    hierarchy: PrunedHierarchy
    relative_floor: float

    @property
    def num_groups(self) -> int:
        return len(self.table)

    @property
    def num_nonzero(self) -> int:
        return int((self.counts > 0).sum())


@functools.lru_cache(maxsize=2)
def figure_workload(
    height: int = 18,
    packets: int = 2_000_000,
    table_seed: int = 11,
    trace_seed: int = 12,
) -> FigureWorkload:
    """Build (once) the scaled Section-5 workload."""
    domain = UIDDomain(height)
    table = generate_subnet_table(domain, seed=table_seed)
    uids = generate_trace(table, packets, seed=trace_seed, model=TrafficModel())
    counts = table.counts_from_uids(uids)
    nonzero = counts[counts > 0]
    # Paper: the relative-error sanity constant b is a low-percentile
    # actual value from historical data.
    floor = max(1.0, float(np.percentile(nonzero, 5))) if nonzero.size else 1.0
    return FigureWorkload(
        table=table,
        counts=counts,
        hierarchy=PrunedHierarchy(table, counts),
        relative_floor=floor,
    )


def metric_for(name: str, workload: FigureWorkload):
    """Instantiate a metric with the workload's relative floor."""
    if "relative" in name:
        return get_metric(name, floor=workload.relative_floor)
    return get_metric(name)


def save_series(
    filename: str,
    header: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Write a result table to ``benchmarks/results/`` as CSV."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, filename)
    with open(path, "w") as f:
        f.write(",".join(map(str, header)) + "\n")
        for row in rows:
            f.write(",".join(str(v) for v in row) + "\n")
    return path


def format_table(
    header: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render a small fixed-width table for logs."""

    def fmt(v: object) -> str:
        if isinstance(v, float):
            return f"{v:.4g}"
        return str(v)

    cells = [list(map(fmt, header))] + [list(map(fmt, r)) for r in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(header))]
    lines = [
        "  ".join(c.rjust(w) for c, w in zip(row, widths)) for row in cells
    ]
    lines.insert(1, "  ".join("-" * w for w in widths))
    return "\n".join(lines)
