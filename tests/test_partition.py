"""Tests for partitioning-function semantics (paper Figures 3-6)."""

import numpy as np
import pytest

from repro import (
    Bucket,
    Histogram,
    LongestPrefixMatchPartitioning,
    NonoverlappingPartitioning,
    OverlappingPartitioning,
    UIDDomain,
)

DOM = UIDDomain(3)  # the paper's 3-level example hierarchy


def node(pattern: str) -> int:
    return DOM.parse_prefix_str(pattern)


class TestFigure3Nonoverlapping:
    """Figure 3: cut {0xx} {10x} {11x}; UID 010 is in partition 2...
    we mirror the figure's structure: three disjoint subtrees."""

    @pytest.fixture
    def fn(self):
        return NonoverlappingPartitioning(
            DOM, [Bucket(node("0*")), Bucket(node("10*")), Bucket(node("11*"))]
        )

    def test_uid_maps_to_its_subtree(self, fn):
        assert fn.buckets_for_uid(0b010) == [node("0*")]
        assert fn.buckets_for_uid(0b101) == [node("10*")]
        assert fn.buckets_for_uid(0b111) == [node("11*")]

    def test_histogram_counts(self, fn):
        hist = fn.build_histogram([0b000, 0b010, 0b101, 0b110, 0b111])
        assert hist.get(node("0*")) == 2
        assert hist.get(node("10*")) == 1
        assert hist.get(node("11*")) == 2
        assert hist.unmatched == 0

    def test_covers_domain(self, fn):
        assert fn.covers_domain()

    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            NonoverlappingPartitioning(
                DOM, [Bucket(node("0*")), Bucket(node("01*"))]
            )

    def test_sparse_rejected(self):
        with pytest.raises(ValueError, match="sparse"):
            NonoverlappingPartitioning(
                DOM, [Bucket(node("0*"), sparse_group_node=node("01*"))]
            )

    def test_partial_cut_counts_unmatched(self):
        fn = NonoverlappingPartitioning(DOM, [Bucket(node("0*"))])
        hist = fn.build_histogram([0b000, 0b100])
        assert hist.get(node("0*")) == 1
        assert hist.unmatched == 1
        assert not fn.covers_domain()


class TestFigure4Overlapping:
    """Figure 4: buckets {root, 1xx, 11x}; UID 110 maps to all three."""

    @pytest.fixture
    def fn(self):
        return OverlappingPartitioning(
            DOM, [Bucket(node("*")), Bucket(node("1*")), Bucket(node("11*"))]
        )

    def test_uid_maps_to_all_ancestors(self, fn):
        assert fn.buckets_for_uid(0b110) == [node("*"), node("1*"), node("11*")]
        assert fn.buckets_for_uid(0b010) == [node("*")]
        assert fn.buckets_for_uid(0b100) == [node("*"), node("1*")]

    def test_histogram_counts_nest(self, fn):
        hist = fn.build_histogram([0b010, 0b100, 0b110, 0b111])
        assert hist.get(node("*")) == 4
        assert hist.get(node("1*")) == 3
        assert hist.get(node("11*")) == 2


class TestFigure5LongestPrefixMatch:
    """Figure 5: buckets {root, 11x}; UID 010 -> root, UID 110 -> 11x."""

    @pytest.fixture
    def fn(self):
        return LongestPrefixMatchPartitioning(
            DOM, [Bucket(node("*")), Bucket(node("11*"))]
        )

    def test_closest_ancestor_wins(self, fn):
        assert fn.buckets_for_uid(0b010) == [node("*")]
        assert fn.buckets_for_uid(0b110) == [node("11*")]

    def test_histogram_excludes_holes(self, fn):
        hist = fn.build_histogram([0b010, 0b100, 0b110, 0b111])
        assert hist.get(node("*")) == 2  # 010 and 100 only
        assert hist.get(node("11*")) == 2

    def test_nesting_structure(self, fn):
        nesting = fn.nesting_parent()
        assert nesting[node("*")] is None
        assert nesting[node("11*")] == node("*")
        assert fn.holes()[node("*")] == [node("11*")]

    def test_deep_nesting(self):
        fn = LongestPrefixMatchPartitioning(
            DOM,
            [Bucket(node("*")), Bucket(node("1*")), Bucket(node("11*"))],
        )
        holes = fn.holes()
        assert holes[node("*")] == [node("1*")]
        assert holes[node("1*")] == [node("11*")]


class TestSparseBuckets:
    def test_sparse_match_nodes(self):
        b = Bucket(node("0*"), sparse_group_node=node("01*"))
        assert b.is_sparse
        assert b.match_nodes() == (node("0*"), node("01*"))

    def test_sparse_inner_must_be_below(self):
        with pytest.raises(ValueError, match="not below"):
            OverlappingPartitioning(
                DOM, [Bucket(node("0*"), sparse_group_node=node("10*"))]
            )

    def test_sparse_lpm_counting(self):
        fn = LongestPrefixMatchPartitioning(
            DOM,
            [Bucket(node("*")),
             Bucket(node("0*"), sparse_group_node=node("01*"))],
        )
        hist = fn.build_histogram([0b010, 0b011, 0b000, 0b100])
        assert hist.get(node("01*")) == 2  # the sparse group, exact
        assert hist.get(node("0*")) == 1   # residual in the "empty" region
        assert hist.get(node("*")) == 1

    def test_sparse_collision_rejected(self):
        with pytest.raises(ValueError, match="collide"):
            OverlappingPartitioning(
                DOM,
                [Bucket(node("0*"), sparse_group_node=node("01*")),
                 Bucket(node("01*"))],
            )


class TestStructuralValidation:
    def test_duplicate_node_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            OverlappingPartitioning(DOM, [Bucket(2), Bucket(2)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            OverlappingPartitioning(DOM, [])

    def test_bad_node_rejected(self):
        with pytest.raises(ValueError):
            OverlappingPartitioning(DOM, [Bucket(1 << 10)])


class TestSizeAccounting:
    def test_function_size_monotone_in_buckets(self):
        f1 = OverlappingPartitioning(DOM, [Bucket(node("*"))])
        f2 = OverlappingPartitioning(
            DOM, [Bucket(node("*")), Bucket(node("1*"))]
        )
        assert f2.size_bits() == 2 * f1.size_bits()

    def test_sparse_surcharge_is_loglog(self):
        plain = OverlappingPartitioning(DOM, [Bucket(node("0*"))])
        sparse = OverlappingPartitioning(
            DOM, [Bucket(node("0*"), sparse_group_node=node("01*"))]
        )
        surcharge = sparse.size_bits() - plain.size_bits()
        assert 0 < surcharge < plain.size_bits()

    def test_histogram_size_counts_nonzero_only(self):
        hist = Histogram({2: 5.0, 3: 0.0})
        assert len(hist) == 1
        assert hist.size_bits(DOM) == hist.size_bits(DOM, counter_bits=32)
        assert hist.size_bits(DOM, counter_bits=16) < hist.size_bits(DOM)

    def test_histogram_bytes_round_up(self):
        hist = Histogram({2: 5.0})
        assert hist.size_bytes(DOM) == (hist.size_bits(DOM) + 7) // 8


class TestMatchingMachinery:
    def test_matching_nodes_for_uid_ordered_shallow_first(self):
        fn = OverlappingPartitioning(
            DOM, [Bucket(node("11*")), Bucket(node("*")), Bucket(node("1*"))]
        )
        assert fn.matching_nodes_for_uid(0b111) == [
            node("*"), node("1*"), node("11*")
        ]

    def test_uid_out_of_domain_rejected(self):
        fn = OverlappingPartitioning(DOM, [Bucket(node("*"))])
        with pytest.raises(ValueError):
            fn.matching_nodes_for_uid(8)

    def test_histogram_total_and_unmatched(self):
        fn = LongestPrefixMatchPartitioning(DOM, [Bucket(node("0*"))])
        hist = fn.build_histogram([0, 1, 4, 5, 6])
        assert hist.total == 5
        assert hist.unmatched == 3
