"""Brute-force optimal partitioning functions for tiny hierarchies.

This module is the test oracle for the dynamic programs: it enumerates
*every* admissible bucket set over the full virtual hierarchy (not just
the pruned one), evaluates each candidate end-to-end through the same
histogram/reconstruction pipeline the Monitors and Control Center use,
and returns the best.  Exponential in the domain size — only use it on
domains of height ~4 or less.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.domain import ROOT, UIDDomain
from ..core.errors import DistributiveErrorMetric
from ..core.estimate import evaluate_function
from ..core.groups import GroupTable
from ..core.partition import (
    Bucket,
    LongestPrefixMatchPartitioning,
    NonoverlappingPartitioning,
    OverlappingPartitioning,
    PartitioningFunction,
)

__all__ = [
    "candidate_buckets",
    "exhaustive_nonoverlapping",
    "exhaustive_overlapping",
    "exhaustive_lpm",
]


def candidate_buckets(
    table: GroupTable,
    counts: Sequence[float],
    sparse: bool = False,
) -> List[Bucket]:
    """All bucket candidates: every node at or above a group node, plus
    (optionally) a sparse variant for every node enclosing exactly one
    nonzero group."""
    counts = np.asarray(counts, dtype=np.float64)
    domain = table.domain
    nodes = set()
    for g in table.nodes.tolist():
        nodes.add(int(g))
        nodes.update(UIDDomain.ancestors(int(g)))
    out: List[Bucket] = []
    for node in sorted(nodes):
        out.append(Bucket(node))
        if not sparse:
            continue
        idx = table.group_indices_below(node)
        nz = idx[counts[idx] > 0]
        if nz.size == 1:
            gnode = int(table.nodes[int(nz[0])])
            if gnode != node:
                out.append(Bucket(node, sparse_group_node=gnode))
    return out


def _covers_all_groups(table: GroupTable, buckets: Sequence[Bucket]) -> bool:
    covered = np.zeros(len(table), dtype=bool)
    for b in buckets:
        covered[table.group_indices_below(b.node)] = True
    return bool(covered.all())


def _disjoint(domain: UIDDomain, buckets: Sequence[Bucket]) -> bool:
    ranges = sorted(domain.uid_range(b.node) for b in buckets)
    return all(a[1] <= b[0] for a, b in zip(ranges, ranges[1:]))


def _distinct_nodes(buckets: Sequence[Bucket]) -> bool:
    seen = set()
    for b in buckets:
        for n in b.match_nodes():
            if n in seen:
                return False
            seen.add(n)
    return True


def _search(
    table: GroupTable,
    counts: Sequence[float],
    metric: DistributiveErrorMetric,
    budget: int,
    candidates: Sequence[Bucket],
    build,
    valid,
) -> Tuple[float, Optional[PartitioningFunction]]:
    best = float("inf")
    best_fn: Optional[PartitioningFunction] = None
    for size in range(1, budget + 1):
        for combo in combinations(candidates, size):
            if not _distinct_nodes(combo):
                continue
            if not valid(combo):
                continue
            fn = build(list(combo))
            err = evaluate_function(table, counts, fn, metric)
            if err < best - 1e-12:
                best = err
                best_fn = fn
    return best, best_fn


def exhaustive_nonoverlapping(
    table: GroupTable,
    counts: Sequence[float],
    metric: DistributiveErrorMetric,
    budget: int,
) -> Tuple[float, Optional[NonoverlappingPartitioning]]:
    """Optimal nonoverlapping function by enumeration: disjoint bucket
    subtrees covering every group."""
    cands = candidate_buckets(table, counts, sparse=False)
    domain = table.domain

    def valid(combo):
        return _disjoint(domain, combo) and _covers_all_groups(table, combo)

    return _search(
        table, counts, metric, budget, cands,
        lambda bs: NonoverlappingPartitioning(domain, bs), valid,
    )


def exhaustive_overlapping(
    table: GroupTable,
    counts: Sequence[float],
    metric: DistributiveErrorMetric,
    budget: int,
    sparse: bool = False,
    require_root: bool = True,
) -> Tuple[float, Optional[OverlappingPartitioning]]:
    """Optimal overlapping function by enumeration.

    ``require_root`` mirrors the constructive algorithms: the top-level
    bucket enclosing all groups must be selected.
    """
    cands = candidate_buckets(table, counts, sparse=sparse)
    domain = table.domain
    top = _top_node(table)

    def valid(combo):
        return (not require_root) or any(b.node == top for b in combo)

    return _search(
        table, counts, metric, budget, cands,
        lambda bs: OverlappingPartitioning(domain, bs), valid,
    )


def exhaustive_lpm(
    table: GroupTable,
    counts: Sequence[float],
    metric: DistributiveErrorMetric,
    budget: int,
    sparse: bool = False,
    require_root: bool = True,
) -> Tuple[float, Optional[LongestPrefixMatchPartitioning]]:
    """Optimal longest-prefix-match function by enumeration."""
    cands = candidate_buckets(table, counts, sparse=sparse)
    domain = table.domain
    top = _top_node(table)

    def valid(combo):
        return (not require_root) or any(b.node == top for b in combo)

    return _search(
        table, counts, metric, budget, cands,
        lambda bs: LongestPrefixMatchPartitioning(domain, bs), valid,
    )


def _top_node(table: GroupTable) -> int:
    """The lowest node enclosing every group — the pruned hierarchy's
    root anchor when zero groups reach the domain root, else ROOT."""
    top = int(table.nodes[0])
    for g in table.nodes.tolist()[1:]:
        top = UIDDomain.lca(top, int(g))
    return top
