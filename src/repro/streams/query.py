"""The exact grouped windowed aggregation query (paper Section 2.2.2).

This is the ground truth the histograms approximate::

    select G.gid, count(*)
    from UIDStream U [sliding window], GroupHierarchy G
    where G.uid = U.uid
    group by G.node;

Evaluated directly against the full lookup table — the expensive
computation a deployment avoids by shipping histograms instead of raw
identifiers.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from ..core.groups import GroupTable
from .tuples import Trace
from .windows import TumblingWindows, Window

__all__ = ["exact_group_counts", "GroupedAggregationQuery"]


def exact_group_counts(
    table: GroupTable,
    uids: Sequence[int],
    values: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Exact per-group aggregates of a window (the join + group-by):
    ``count(*)`` per group, or ``sum(value)`` when a parallel per-tuple
    ``values`` vector is given."""
    return table.counts_from_uids(uids, values=values)


class GroupedAggregationQuery:
    """A windowed count(*) group-by query against a lookup table.

    Iterating :meth:`run` yields ``(window, counts)`` pairs — the exact
    answer stream the Control Center's approximations are scored
    against.
    """

    def __init__(
        self,
        table: GroupTable,
        windows: Optional[TumblingWindows] = None,
    ) -> None:
        self.table = table
        self.windows = windows or TumblingWindows(1.0)

    def run(self, trace: Trace) -> Iterator[Tuple[Window, np.ndarray]]:
        for window in self.windows.segment(trace):
            yield window, exact_group_counts(
                self.table, window.uids, values=window.values
            )

    def answer_dict(self, uids: Sequence[int]) -> Dict[object, float]:
        """One window's answer keyed by application group id, nonzero
        groups only (the shape of the SQL result set)."""
        counts = exact_group_counts(self.table, uids)
        return {
            self.table.group_ids[i]: float(c)
            for i, c in enumerate(counts)
            if c > 0
        }
