"""Quantized longest-prefix-match heuristic (paper Section 3.2.7).

The paper's pseudopolynomial program tabulates, for every hierarchy
node ``i``, bucket budget ``B``, *uncaptured* group count ``g`` and
tuple count ``t`` (the mass below ``i`` not swallowed by holes — it
flows up to the enclosing bucket), and enclosing-bucket density ``d``::

    E[i, B, g, t, d]

with the bucket case requiring ``d = t / g`` for the children of the
new bucket.  Exact tabulation is exponential in the input, so the
heuristic quantizes ``g``, ``t`` and ``d`` onto an exponential grid
``(1 + theta)^i`` and keeps, per ``(i, B, d)``, only the best few
``(g, t)`` states (a beam, configurable; the paper's analysis keeps all
``O(k^2)`` grid cells, which the default beam width covers at coarse
``theta``).

Because quantization makes the DP's internal error accounting
approximate, the returned curve reports the *measured* error of the
materialized functions, like the greedy heuristic does.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.errors import PenaltyMetric
from ..core.estimate import evaluate_function
from ..core.hierarchy import PNode, PrunedHierarchy
from ..core.partition import Bucket, LongestPrefixMatchPartitioning
from ..obs import span
from .base import INF, ConstructionResult, DPContext

__all__ = ["build_lpm_quantized", "Quantizer"]


class Quantizer:
    """Exponential quantization grid ``(1 + theta)^i`` with a zero cell.

    Values are snapped to the nearest grid representative in log space
    (exponents may be negative for sub-unit values); 0 maps to a
    dedicated sentinel cell.
    """

    #: Sentinel cell index for the value 0.
    ZERO_CELL = -(1 << 60)

    def __init__(self, theta: float) -> None:
        if theta <= 0:
            raise ValueError(f"theta must be positive, got {theta}")
        self.theta = theta
        self._log_base = math.log1p(theta)

    def cell(self, value: float) -> int:
        """Grid index of ``value`` (``ZERO_CELL`` for zero)."""
        if value <= 0:
            return self.ZERO_CELL
        return int(round(math.log(value) / self._log_base))

    def rep(self, cell: int) -> float:
        """Representative value of a grid cell."""
        if cell == self.ZERO_CELL:
            return 0.0
        return (1.0 + self.theta) ** cell

    def quantize(self, value: float) -> float:
        return self.rep(self.cell(value))

    def density_cells(self, lo: float, hi: float) -> List[int]:
        """All grid cells covering densities in ``[lo, hi]`` plus zero."""
        if hi <= 0:
            return [self.ZERO_CELL]
        lo = max(min(lo, hi), 1e-9)
        return [self.ZERO_CELL] + list(range(self.cell(lo), self.cell(hi) + 1))


#: One beam state: ``(g_cell, t_cell, penalty, choice)`` — the
#: quantized uncaptured group/tuple mass below a node, its penalty, and
#: the reconstruction trace.  Plain tuples keep the DP's hot loop fast.
_Entry = Tuple[int, int, float, Tuple]


def build_lpm_quantized(
    hierarchy: PrunedHierarchy,
    metric: PenaltyMetric,
    budget: int,
    theta: float = 1.0,
    beam: int = 6,
    sparse: bool = True,
    curve_budgets: Optional[List[int]] = None,
) -> ConstructionResult:
    """Construct a longest-prefix-match function with the quantized
    heuristic.

    Parameters
    ----------
    theta:
        Quantization granularity; smaller is finer (and slower).  The
        paper's counters are ``(1 + theta)^i``-distributed.
    beam:
        Maximum number of distinct quantized ``(g, t)`` states kept per
        ``(node, budget, density)`` cell.
    curve_budgets:
        Budgets at which to evaluate the error curve (default: every
        budget); sweeps pass their grid to skip intermediate points.
    """
    if budget < 1:
        raise ValueError(f"budget must be at least 1, got {budget}")
    solver = _QuantizedSolver(hierarchy, metric, budget, theta, beam, sparse)
    with span(
        "lpm_quantized.solve", budget=budget, theta=theta, beam=beam,
        nodes=len(hierarchy.nodes),
    ) as sp:
        table = solver.solve_root()
        sp.annotate(density_cells=len(solver.d_cells))
    curve = np.full(budget + 1, INF)
    cache: Dict[int, LongestPrefixMatchPartitioning] = {}

    def make_function(b: int) -> LongestPrefixMatchPartitioning:
        b = max(1, min(b, budget))
        if b not in cache:
            feasible = [B for B in range(1, b + 1) if table[B] is not None]
            if not feasible:
                cache[b] = LongestPrefixMatchPartitioning(
                    hierarchy.domain, [Bucket(hierarchy.root.node)]
                )
            else:
                B = min(feasible, key=lambda B: table[B][2])
                buckets: List[Bucket] = []
                solver.collect(table[B][3], buckets)
                cache[b] = LongestPrefixMatchPartitioning(
                    hierarchy.domain, buckets
                )
        return cache[b]

    budgets = (
        range(1, budget + 1)
        if curve_budgets is None
        else sorted({min(budget, max(1, b)) for b in curve_budgets})
    )
    with span("lpm_quantized.curve", evaluations=len(budgets)):
        for b in budgets:
            fn = make_function(b)
            curve[b] = evaluate_function(
                hierarchy.table, hierarchy.counts, fn, metric
            )
    best = INF
    for b in range(1, budget + 1):
        best = min(best, curve[b])
        curve[b] = best
    return ConstructionResult(
        make_function=make_function, curve=curve, budget=budget,
        stats={"theta": theta, "beam": float(beam)},
    )


class _QuantizedSolver:
    def __init__(self, hierarchy, metric, budget, theta, beam, sparse):
        self.h = hierarchy
        self.metric = metric
        self.budget = budget
        self.q = Quantizer(theta)
        self.beam = beam
        self.sparse = sparse
        self.ctx = DPContext(hierarchy, metric)
        total_g = max(1, hierarchy.root.n_groups)
        max_d = max(hierarchy.root.tuples, 1.0)
        self.d_cells = self.q.density_cells(1.0 / total_g, max_d)
        self._caps = self._compute_caps()
        # Inner-loop caches: cell-of-sum and cell-of-ratio on cell pairs
        # (exact, since cells determine their representatives).
        self._sum_cache: Dict[Tuple[int, int], int] = {}
        self._ratio_cache: Dict[Tuple[int, int], int] = {}

    def _sum_cell(self, a: int, b: int) -> int:
        key = (a, b) if a <= b else (b, a)
        out = self._sum_cache.get(key)
        if out is None:
            out = self.q.cell(self.q.rep(a) + self.q.rep(b))
            self._sum_cache[key] = out
        return out

    def _ratio_cell(self, t_cell: int, g_cell: int) -> int:
        key = (t_cell, g_cell)
        out = self._ratio_cache.get(key)
        if out is None:
            g = self.q.rep(g_cell)
            out = self.q.cell(self.q.rep(t_cell) / g if g > 0 else 0.0)
            self._ratio_cache[key] = out
        return out

    def _compute_caps(self) -> np.ndarray:
        caps = np.zeros(len(self.h.nodes), dtype=np.int64)
        for p in self.h.nodes:
            if p.is_leaf or (self.sparse and p.n_nonzero <= 1):
                caps[p.index] = 1
            else:
                caps[p.index] = min(
                    self.budget, caps[p.left.index] + caps[p.right.index] + 1
                )
        return caps

    # ------------------------------------------------------------------
    def solve_root(self) -> List[Optional[_Entry]]:
        """``table[B]`` = best root-bucket state with ``B`` buckets."""
        self._bucket_entries: Dict[int, Dict[int, _Entry]] = {}
        self._solve(self.h.root)
        self._free(self.h.root)
        recorded = self._bucket_entries.get(self.h.root.index, {})
        out: List[Optional[_Entry]] = [None] * (self.budget + 1)
        best: Optional[_Entry] = None
        for B in range(1, self.budget + 1):
            e = recorded.get(B)
            if e is not None and (best is None or e[2] < best[2]):
                best = e
            out[B] = best
        return out

    # ------------------------------------------------------------------
    def _solve(self, p: PNode) -> Dict[int, List[List[_Entry]]]:
        """Tables for node ``p``: density cell -> per-budget beam lists."""
        cap = int(self._caps[p.index])
        collapse = (not p.is_leaf) and self.sparse and p.n_nonzero <= 1
        tables: Dict[int, List[List[_Entry]]] = {}
        if p.is_leaf or collapse:
            kind = "sparse" if collapse else "leaf_bucket"
            bucket_entry = (
                Quantizer.ZERO_CELL, Quantizer.ZERO_CELL, 0.0, (kind, p)
            )
            g_cell = self.q.cell(float(p.n_groups))
            t_cell = self.q.cell(p.tuples)
            # One batched grperr across every density cell instead of a
            # slice evaluation per cell.
            pens = self.ctx.grperr_many(
                p, [self.q.rep(dc) for dc in self.d_cells]
            )
            for d_cell, pen in zip(self.d_cells, pens):
                per_b: List[List[_Entry]] = [[] for _ in range(cap + 1)]
                per_b[0].append((g_cell, t_cell, float(pen), ("pass", p)))
                per_b[1].append(bucket_entry)
                tables[d_cell] = per_b
            self._bucket_entries.setdefault(p.index, {})[1] = bucket_entry
            self._store(p, tables)
            return tables

        lt = self._solve(p.left)
        rt = self._solve(p.right)
        # One fused sweep per density cell handles both DP cases:
        # the non-bucket merge (children under the same enclosing
        # density) and — when the merged state's own quantized density
        # equals this cell, the paper's ``d = t / g`` side condition —
        # making ``p`` a bucket over that state for one extra budget
        # unit.  Entries are plain tuples (g_cell, t_cell, penalty,
        # choice) and dominated states are dropped as they are
        # generated: this loop is the heuristic's hot path.
        sum_cell = self._sum_cell
        ratio_cell = self._ratio_cell
        is_sum = self.metric.combine == "sum"
        combine = self.metric.combine_totals
        bucket_best: Dict[int, Tuple] = {}
        zc = Quantizer.ZERO_CELL
        for d_cell in self.d_cells:
            lpb, rpb = lt[d_cell], rt[d_cell]
            merged: List[Dict[Tuple[int, int], Tuple]] = [
                {} for _ in range(cap + 1)
            ]
            for bl, left_entries in enumerate(lpb):
                if not left_entries:
                    continue
                br_max = min(len(rpb) - 1, cap - bl)
                for br in range(br_max + 1):
                    right_entries = rpb[br]
                    if not right_entries:
                        continue
                    target = merged[bl + br]
                    bucket_B = bl + br + 1
                    for el in left_entries:
                        el_g, el_t, el_p, el_c = el
                        for er in right_entries:
                            pen = (
                                el_p + er[2] if is_sum
                                else (el_p if el_p > er[2] else er[2])
                            )
                            g = sum_cell(el_g, er[0])
                            t = sum_cell(el_t, er[1])
                            key = (g, t)
                            cur = target.get(key)
                            if cur is None or pen < cur[2]:
                                target[key] = (
                                    g, t, pen, ("split", p, el_c, er[3]),
                                )
                            if bucket_B <= cap and ratio_cell(t, g) == d_cell:
                                bb = bucket_best.get(bucket_B)
                                if bb is None or pen < bb[2]:
                                    bucket_best[bucket_B] = (
                                        zc, zc, pen,
                                        ("bucket_split", p, el_c, er[3]),
                                    )
            tables[d_cell] = [
                sorted(d.values(), key=lambda e: e[2])[: self.beam]
                for d in merged
            ]
        # Offer the bucket case to every density cell and record it for
        # the root answer.
        for B, e in bucket_best.items():
            self._bucket_entries.setdefault(p.index, {})[B] = e
            for d_cell in self.d_cells:
                tables[d_cell][B].append(e)
        self._free(p.left)
        self._free(p.right)
        self._store(p, tables)
        return tables

    # -- table lifecycle -------------------------------------------------
    def _store(self, p: PNode, tables) -> None:
        if not hasattr(self, "_tabs"):
            self._tabs: Dict[int, object] = {}
        self._tabs[p.index] = tables

    def _free(self, p: PNode) -> None:
        if hasattr(self, "_tabs"):
            self._tabs.pop(p.index, None)

    # -- reconstruction ---------------------------------------------------
    def collect(self, choice: Tuple, out: List[Bucket]) -> None:
        kind = choice[0]
        if kind == "pass":
            return
        if kind == "leaf_bucket":
            out.append(Bucket(choice[1].node))
            return
        if kind == "sparse":
            p = choice[1]
            leaf = _single_nonzero_leaf(p)
            if leaf is not None and leaf.node != p.node:
                out.append(Bucket(p.node, sparse_group_node=leaf.node))
            else:
                out.append(Bucket(p.node))
            return
        if kind == "split":
            self.collect(choice[2], out)
            self.collect(choice[3], out)
            return
        if kind == "bucket_split":
            out.append(Bucket(choice[1].node))
            self.collect(choice[2], out)
            self.collect(choice[3], out)
            return
        if kind == "bucket":
            out.append(Bucket(choice[1].node))
            self.collect(choice[2], out)
            return
        raise AssertionError(f"unknown choice {kind!r}")


def _single_nonzero_leaf(p: PNode) -> Optional[PNode]:
    while not p.is_leaf:
        p = p.left if p.left.n_nonzero >= 1 else p.right
    return p if p.kind == "group" else None
