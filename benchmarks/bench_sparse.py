"""Ablation A3: sparse buckets (paper Section 4.3, Figure 14).

On sparse windows (most groups zero), sparse buckets represent isolated
nonzero groups exactly inside explicitly-empty regions for one bucket
plus O(log log |U|) bits.  This bench compares the overlapping DP with
and without them: error at equal budget, representation size, and
construction time (the DP "starts at the upper node of each sparse
bucket", shrinking the search).
"""

import time

import numpy as np

from repro import PrunedHierarchy, UIDDomain, get_metric
from repro.algorithms import build_overlapping
from repro.data import TrafficModel, generate_subnet_table, generate_trace

from workloads import format_table, save_series


def _sparse_workload():
    dom = UIDDomain(16)
    table = generate_subnet_table(dom, seed=41)
    model = TrafficModel(cascade_dropout=0.25)  # very sparse activity
    uids = generate_trace(table, 300_000, seed=42, model=model)
    counts = table.counts_from_uids(uids)
    return table, counts, PrunedHierarchy(table, counts)


def test_sparse_buckets(benchmark):
    table, counts, hierarchy = _sparse_workload()
    metric = get_metric("avg_relative", floor=1.0)
    budget = 60

    t0 = time.perf_counter()
    with_sparse = build_overlapping(hierarchy, metric, budget, sparse=True)
    t_with = time.perf_counter() - t0
    t0 = time.perf_counter()
    without = build_overlapping(hierarchy, metric, budget, sparse=False)
    t_without = time.perf_counter() - t0

    fn_with = with_sparse.function_at(budget)
    fn_without = without.function_at(budget)
    n_sparse = sum(1 for b in fn_with.buckets if b.is_sparse)

    rows = [
        ["error", with_sparse.error_at(budget), without.error_at(budget)],
        ["function_bits", fn_with.size_bits(), fn_without.size_bits()],
        ["sparse_buckets", n_sparse, 0],
        ["construct_seconds", round(t_with, 3), round(t_without, 3)],
    ]
    save_series("a3_sparse.csv", ["quantity", "with_sparse", "without"], rows)
    print(f"\nA3 sparse buckets (overlapping DP, budget {budget}, "
          f"{hierarchy.num_nonzero_groups} nonzero of {len(table)} groups)")
    print(format_table(["quantity", "with_sparse", "without"], rows))

    # sparse buckets never hurt, and on sparse data they get used
    assert with_sparse.error_at(budget) <= without.error_at(budget) + 1e-9
    assert n_sparse > 0

    benchmark.pedantic(
        lambda: build_overlapping(hierarchy, metric, budget, sparse=True),
        rounds=1, iterations=1,
    )
