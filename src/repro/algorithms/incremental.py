"""Subtree-memoized incremental DP rebuilds (ROADMAP item 2).

The paper leaves recalibration *policy* open; PR 5 answered "when"
with the drift detector, and this module answers "how much work" — a
rebuild should cost time proportional to the drift, not to ``|G|``.
The lever is the tree structure of the dynamic programs themselves:

* **Nonoverlapping.**  The table ``E[i, .]`` (and its recorded split
  choices) depends only on the *content* of ``i``'s pruned subtree —
  the leaf counts, the zero-summary weights and the subtree shape —
  plus the construction configuration (metric, budget, kernel mode).
  A subtree whose per-group counts did not change therefore
  contributes a bit-identical table to its parent's knapsack merge,
  so the whole subtree's tables and splits can be reused from the
  previous build and only the *dirty* nodes (ancestors of changed
  groups) re-run their merges.

* **Overlapping.**  The bucket-case table ``F[i, .]`` is independent
  of the enclosing ancestor (the property the LPM heuristic also
  exploits), so it memoizes per subtree exactly like the
  nonoverlapping table.  The conditioned tables ``E[i, ., j]`` depend
  on the subtree content *and* the ancestor ``j``'s density — but on
  nothing else about ``j``.  Dirtiness is monotone along any ancestor
  chain (a change below ``j`` is also below every ancestor of ``j``),
  so the dirty ancestors of a clean node are always a *prefix* of its
  root-first ancestor chain: rows conditioned on the clean suffix are
  copied from the memo and only the first ``D`` rows are re-merged —
  in one stacked kernel call, since batch rows are row-independent.

Each node's identity is its per-subtree **content fingerprint**:
BLAKE2b over the subtree's pruned structure (node ids, kinds, group
counts, tuple counts, recursively over children).  Two builds of the
same window support (the pruned tree's shape is a pure function of
which groups are nonzero) assign every subtree the same postorder
index, so the common case — localized count drift with an unchanged
support set, recognized by a BLAKE2b *structure signature* over the
nonzero mask — resolves fingerprint equality by index: the dirty set
is one vectorized diff of the new counts against the counts the memo
was built from, pushed to internal nodes by a prefix sum over each
subtree's contiguous postorder interval, and only dirty fingerprints
are re-hashed.  When the support set did change, the nonoverlapping
session falls back to fingerprint-keyed splicing (reuse survives
pruned-shape changes elsewhere in the tree); the overlapping session
starts cold — correct either way, because reuse is an optimization
over an identical computation.

A memo is only consulted when its configuration key (algorithm,
metric, budget, builder options, kernel mode) matches the rebuild's;
the kernel mode is part of the key because ``suffstats`` curves are
not bit-identical to the other modes'.  Because reused entries are
the arrays an identical solve on identical content produced, the
incremental result — curve, argmin tie-breaks, reconstructed bucket
set — is **bit-identical to a from-scratch build**.
``tests/test_incremental.py`` property-tests this with zero
tolerance.

The dirty set is cross-checked against the count diff: each session
diffs the new counts against the counts the previous memo was built
from (the warehouse history the standing function used), reporting
``dirty_groups`` alongside the subtree reuse counters so the drift
signals of PR 5 (``quality.drift_score``, occupancy skew) can
corroborate what the rebuild actually re-solved.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.errors import PenaltyMetric
from ..core.hierarchy import PNode, PrunedHierarchy
from .base import INF, DPContext
from .kernels import kernel_mode

__all__ = [
    "subtree_fingerprints",
    "memo_config_key",
    "memo_compatible",
    "supports_incremental",
    "new_session",
    "NonoverlappingMemo",
    "OverlappingMemo",
    "NonoverlappingSession",
    "OverlappingSession",
]

#: Algorithms with a subtree-memoized incremental path.  The LPM
#: heuristics rebuild through their own greedy passes and are cheap
#: enough that memoization has nothing to amortize.
INCREMENTAL_ALGORITHMS = ("nonoverlapping", "overlapping")

_KIND_CODE = {"group": 0, "zero": 1, "branch": 2}

_pack_node = struct.Struct("<Bqqd").pack


def _node_hash(p: PNode, fps: List[bytes]) -> bytes:
    h = hashlib.blake2b(digest_size=16)
    h.update(_pack_node(_KIND_CODE[p.kind], p.node, p.n_groups, p.tuples))
    if p.left is not None:
        h.update(fps[p.left.index])
        h.update(fps[p.right.index])
    return h.digest()


def subtree_fingerprints(hierarchy: PrunedHierarchy) -> List[bytes]:
    """Per-node content fingerprints, cached on the hierarchy.

    ``fps[i]`` identifies the *content* of node ``i``'s pruned subtree:
    BLAKE2b-128 over ``(kind, node id, group count, tuple count)`` plus
    the children's fingerprints (postorder guarantees children hash
    first).  Everything the dynamic programs read about a subtree —
    leaf counts and weights, densities, collapse decisions, knapsack
    caps — is a function of exactly these fields, so equal
    fingerprints imply bit-identical per-subtree DP state for a fixed
    configuration.
    """
    fps = getattr(hierarchy, "_subtree_fps", None)
    if fps is not None:
        return fps
    fps = [b""] * len(hierarchy.nodes)
    for p in hierarchy.nodes:  # postorder: children precede parents
        fps[p.index] = _node_hash(p, fps)
    hierarchy._subtree_fps = fps
    return fps


def _structure_signature(counts: np.ndarray) -> bytes:
    """BLAKE2b over the window's nonzero-support mask.

    The pruned hierarchy's shape (and therefore its postorder
    numbering) is a pure function of *which* groups are nonzero — the
    counts only set the ``tuples`` fields — so equal signatures mean
    node ``i`` of one build and node ``i`` of the other cover the same
    pruned subtree shape and differ at most in content.
    """
    mask = np.packbits(counts > 0)
    return hashlib.blake2b(mask.tobytes(), digest_size=16).digest()


def memo_config_key(
    algorithm: str, metric: PenaltyMetric, budget: int, options: Dict
) -> Tuple:
    """Everything besides subtree content that shapes the DP tables.

    The kernel mode is included because ``suffstats`` grperr values are
    only approximately equal to the other modes' — reusing curves
    across modes would silently break each mode's self-consistency.
    """
    return (
        algorithm,
        int(budget),
        repr(metric),
        kernel_mode(),
        tuple(sorted(options.items())),
    )


def memo_compatible(
    memo, algorithm: str, metric: PenaltyMetric, budget: int, options: Dict
) -> bool:
    """Whether a (possibly foreign) memo can seed a rebuild under this
    configuration.

    Sessions already discard memos whose config key differs, so passing
    an incompatible memo is safe but pointless; this check lets a
    *shared* memo store (the serving layer's cross-tenant cache) avoid
    handing out memos that would contribute nothing.  Config-compatible
    memos from a different tenant are sound to share: every reuse
    inside a session is guarded by subtree content fingerprints, and
    equal fingerprints imply bit-identical per-subtree DP state for a
    fixed configuration (see :func:`subtree_fingerprints`).
    """
    return (
        memo is not None
        and getattr(memo, "config", None)
        == memo_config_key(algorithm, metric, budget, options)
    )


def supports_incremental(algorithm: str, options: Dict) -> bool:
    """Whether the algorithm/options pair has an incremental path.

    ``low_memory`` nonoverlapping builds drop the split arrays the memo
    reuses, so they fall back to a full rebuild.
    """
    if algorithm not in INCREMENTAL_ALGORITHMS:
        return False
    if algorithm == "nonoverlapping" and options.get("low_memory"):
        return False
    return True


def _dirty_groups(
    old_counts: Optional[np.ndarray], counts: np.ndarray
) -> int:
    """Groups whose warehouse count changed since the previous build
    (all of them when there is no comparable previous build)."""
    if old_counts is None or old_counts.shape != counts.shape:
        return int(counts.shape[0])
    return int(np.count_nonzero(old_counts != counts))


@dataclass
class _TreeArrays:
    """Flat postorder structure of one pruned hierarchy.

    ``left``/``right`` are child postorder indices (-1 at leaves),
    ``size`` is the subtree node count — postorder puts node ``i``'s
    subtree at the contiguous interval ``[i - size[i] + 1, i]`` — and
    ``group`` maps group leaves to their count-array column (-1 for
    branch and zero nodes).  ``parent``/``depth``/``phase`` (subtree
    height) describe the vertical layout, ``order`` lists the internal
    nodes sorted by phase (``order_phase`` alongside) — a valid
    bottom-up batch schedule — and the ``leaf_*`` arrays mirror
    :class:`~repro.algorithms.base.DPContext`'s postorder leaf-slot
    layout (``leaf_group`` is the slot's count column, -1 for zero
    summaries whose weight is their group count).  Pure structure: two
    builds with the same structure signature share these arrays
    verbatim, which is what lets a rebuild skip every O(|nodes|)
    Python setup loop.
    """

    left: np.ndarray
    right: np.ndarray
    size: np.ndarray
    group: np.ndarray
    node_id: np.ndarray
    parent: np.ndarray
    depth: np.ndarray
    phase: np.ndarray
    n_groups: np.ndarray
    n_nonzero: np.ndarray
    order: np.ndarray
    order_phase: np.ndarray
    leaf_lo: np.ndarray
    leaf_hi: np.ndarray
    leaf_weight: np.ndarray
    leaf_group: np.ndarray


def _tree_arrays(hierarchy: PrunedHierarchy) -> _TreeArrays:
    cached = getattr(hierarchy, "_inc_tree_arrays", None)
    if cached is not None:
        return cached
    nodes = hierarchy.nodes
    n = len(nodes)
    left = np.full(n, -1, dtype=np.int64)
    right = np.full(n, -1, dtype=np.int64)
    size = np.ones(n, dtype=np.int64)
    group = np.full(n, -1, dtype=np.int64)
    node_id = np.zeros(n, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    depth = np.zeros(n, dtype=np.int64)
    n_groups = np.zeros(n, dtype=np.int64)
    n_nonzero = np.zeros(n, dtype=np.int64)
    ph = [0] * n
    leaf_lo = np.zeros(n, dtype=np.int64)
    leaf_hi = np.zeros(n, dtype=np.int64)
    weights: List[float] = []
    slots: List[int] = []
    for p in nodes:
        i = p.index
        n_groups[i] = p.n_groups
        n_nonzero[i] = p.n_nonzero
        node_id[i] = p.node
        if p.left is not None:
            li, ri = p.left.index, p.right.index
            left[i] = li
            right[i] = ri
            parent[li] = i
            parent[ri] = i
            size[i] = size[li] + size[ri] + 1
            ph[i] = (ph[li] if ph[li] >= ph[ri] else ph[ri]) + 1
            leaf_lo[i] = leaf_lo[li]
            leaf_hi[i] = leaf_hi[ri]
        else:
            leaf_lo[i] = len(weights)
            if p.group_index is not None:
                group[i] = p.group_index
                slots.append(p.group_index)
                weights.append(1.0)
            else:
                slots.append(-1)
                weights.append(float(p.n_groups))
            leaf_hi[i] = len(weights)
    for i in range(n - 1, -1, -1):  # root-first: parents before children
        li = left[i]
        if li >= 0:
            depth[li] = depth[i] + 1
            depth[right[i]] = depth[i] + 1
    phase = np.asarray(ph, dtype=np.int64)
    internal = np.nonzero(left >= 0)[0]
    order = internal[np.argsort(phase[internal], kind="stable")]
    cached = _TreeArrays(
        left=left, right=right, size=size, group=group,
        node_id=node_id,
        parent=parent, depth=depth, phase=phase, n_groups=n_groups,
        n_nonzero=n_nonzero,
        order=order, order_phase=phase[order],
        leaf_lo=leaf_lo, leaf_hi=leaf_hi,
        leaf_weight=np.asarray(weights, dtype=np.float64),
        leaf_group=np.asarray(slots, dtype=np.int64),
    )
    hierarchy._inc_tree_arrays = cached
    return cached


def _phase_slices(order: np.ndarray, order_phase: np.ndarray):
    """Yield the ``order`` slice of each phase, ascending — every
    node's children belong to a strictly earlier slice."""
    pos = 0
    total = order.size
    while pos < total:
        h = order_phase[pos]
        end = pos + int(
            np.searchsorted(order_phase[pos:], h, side="right")
        )
        yield order[pos:end]
        pos = end


def _ranges(sizes: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(s)`` for each ``s`` in ``sizes`` — the
    row-offset pattern for gathering variable-height blocks out of a
    contiguous row arena."""
    total = int(sizes.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    starts = np.concatenate(([0], np.cumsum(sizes)[:-1]))
    return np.arange(total, dtype=np.int64) - np.repeat(starts, sizes)


def _install_caches(
    hierarchy: PrunedHierarchy, ar: _TreeArrays, counts: np.ndarray
) -> None:
    """Rebuild the per-hierarchy DP caches from the structural arrays
    instead of per-node Python loops.

    A same-structure rebuild constructs a fresh :class:`PrunedHierarchy`
    whose postorder (hence leaf-slot layout) matches the memo's, so the
    cached leaf arrays, phase structure, and densities the DP setup
    would derive by walking the nodes are recomputed here with a few
    vectorized passes and pre-installed under the attribute names
    :class:`~repro.algorithms.base.DPContext` and the phase-batched
    sweep look up.  Every value is bit-identical to the walked version:
    leaf actuals are the same count gathers, and subtree tuple totals
    are accumulated child-pair by child-pair (per phase) exactly as
    ``PrunedHierarchy`` adds them, so the density quotients match.
    """
    hierarchy._inc_tree_arrays = ar
    if getattr(hierarchy, "_dp_leaf_arrays", None) is None:
        lg = ar.leaf_group
        actual = np.where(lg >= 0, counts[np.maximum(lg, 0)], 0.0)
        hierarchy._dp_leaf_arrays = (
            ar.leaf_lo, ar.leaf_hi, actual, ar.leaf_weight
        )
    if getattr(hierarchy, "_dp_structure", None) is None:
        hierarchy._dp_structure = (ar.phase, ar.left, ar.right)
    if getattr(hierarchy, "_inc_tuples", None) is None:
        n = ar.left.shape[0]
        tup = np.zeros(n)
        hg = ar.group >= 0
        tup[hg] = counts[ar.group[hg]]
        for idx in _phase_slices(ar.order, ar.order_phase):
            tup[idx] = tup[ar.left[idx]] + tup[ar.right[idx]]
        hierarchy._inc_tuples = tup
        if getattr(hierarchy, "_dp_densities", None) is None:
            dens = np.zeros(n)
            np.divide(tup, ar.n_groups, out=dens, where=ar.n_groups > 0)
            hierarchy._dp_densities = dens


def _dirty_vector(
    arrays: _TreeArrays, old_counts: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Per-node dirty flags for a same-structure rebuild, vectorized.

    A node is dirty iff some group leaf in its subtree changed count.
    Leaf flags are one gather through ``arrays.group``; internal flags
    are one prefix-sum difference over each subtree's contiguous
    postorder interval — no per-node Python.
    """
    changed = old_counts != counts
    n = arrays.left.shape[0]
    leaf_changed = np.zeros(n, dtype=np.int64)
    has_group = arrays.group >= 0
    leaf_changed[has_group] = changed[arrays.group[has_group]]
    prefix = np.concatenate(([0], np.cumsum(leaf_changed)))
    idx = np.arange(n)
    return (prefix[idx + 1] - prefix[idx - arrays.size + 1]) > 0


_PACK_DTYPE = np.dtype(
    [("k", "u1"), ("n", "<i8"), ("g", "<i8"), ("t", "<f8")]
)  # unaligned: byte-for-byte the struct "<Bqqd" layout of _pack_node


def _refresh_fingerprints(
    hierarchy: PrunedHierarchy,
    old_fps: List[bytes],
    dirty: np.ndarray,
    ar: Optional[_TreeArrays] = None,
) -> List[bytes]:
    """Carry fingerprints forward across a same-structure rebuild by
    re-hashing only the dirty nodes (ascending postorder, so dirty
    children re-hash before their parents; clean fingerprints are
    valid as-is because their subtree content is unchanged).

    With structural arrays (and the cached per-node tuple totals, which
    match ``PNode.tuples`` bit for bit), the 25-byte hash prefixes are
    packed in one vectorized pass instead of touching ``PNode``
    attributes per node."""
    fps = list(old_fps)
    dirty_idx = np.nonzero(dirty)[0]
    tup = getattr(hierarchy, "_inc_tuples", None)
    if ar is None or tup is None:
        nodes = hierarchy.nodes
        for i in dirty_idx.tolist():
            fps[i] = _node_hash(nodes[i], fps)
        hierarchy._subtree_fps = fps
        return fps
    rec = np.empty(dirty_idx.size, dtype=_PACK_DTYPE)
    grp = ar.group[dirty_idx]
    lefts = ar.left[dirty_idx]
    rec["k"] = np.where(grp >= 0, 0, np.where(lefts < 0, 1, 2))
    rec["n"] = ar.node_id[dirty_idx]
    rec["g"] = ar.n_groups[dirty_idx]
    rec["t"] = tup[dirty_idx]
    buf = rec.tobytes()
    lch = lefts.tolist()
    rch = ar.right[dirty_idx].tolist()
    blake = hashlib.blake2b
    for j, i in enumerate(dirty_idx.tolist()):
        li = lch[j]
        pre = buf[25 * j : 25 * j + 25]
        data = pre if li < 0 else pre + fps[li] + fps[rch[j]]
        fps[i] = blake(data, digest_size=16).digest()
    hierarchy._subtree_fps = fps
    return fps


class _LazySplits(dict):
    """Split-array mapping backed by the memo's per-index entries.

    The reconstruction walk reads ``splits[index]`` for the O(budget)
    nodes on the chosen cut; resolving through the entry list avoids
    materializing an |nodes|-sized dict of mostly-untouched arrays on
    every rebuild.
    """

    def __init__(self, by_index: List[Optional["_NOEntry"]]) -> None:
        super().__init__()
        self._by_index = by_index

    def __missing__(self, index: int) -> np.ndarray:
        return self._by_index[index].split


# ---------------------------------------------------------------------------
# Nonoverlapping: whole-subtree table + split memo
# ---------------------------------------------------------------------------
class _NOEntry:
    """One internal node's sweep output (leaves are recomputed — their
    tables are two trivial entries).  Plain slots class: one of these
    is built per dirty internal node on every rebuild, so construction
    cost is on the incremental hot path."""

    __slots__ = ("table", "split")

    def __init__(self, table: np.ndarray, split: np.ndarray) -> None:
        self.table = table
        self.split = split


@dataclass
class NonoverlappingMemo:
    """All internal-node tables and splits of one build.

    ``by_index`` is indexed by the build's postorder; ``fps`` carries
    the content fingerprints so a later build whose pruned support set
    changed can still splice clean subtrees by fingerprint
    (:meth:`fp_map` builds that mapping on demand).  ``counts`` is the
    count vector the build saw — the baseline for the next rebuild's
    dirty diff.
    """

    config: Tuple
    counts: np.ndarray
    structure_sig: bytes
    arrays: _TreeArrays
    fps: List[bytes]
    by_index: List[Optional[_NOEntry]]
    #: Per-node own-density errors of the build (batched modes only) —
    #: spliced into the next same-structure rebuild's context so only
    #: dirty rows are re-evaluated.
    own: Optional[np.ndarray] = None
    _fp_map: Optional[Dict[bytes, int]] = field(default=None, repr=False)

    def fp_map(self) -> Dict[bytes, int]:
        m = self._fp_map
        if m is None:
            m = {
                self.fps[i]: i
                for i, e in enumerate(self.by_index)
                if e is not None
            }
            self._fp_map = m
        return m


class NonoverlappingSession:
    """One incremental nonoverlapping sweep.

    Created per rebuild with the previous build's memo (or ``None``);
    :meth:`sweep` is called by
    :func:`~repro.algorithms.nonoverlapping.build_nonoverlapping` in
    place of its full sweep, and :meth:`finish` hands back the memo for
    the *next* rebuild.
    """

    algorithm = "nonoverlapping"

    def __init__(
        self,
        hierarchy: PrunedHierarchy,
        config: Tuple,
        old: Optional[NonoverlappingMemo],
    ) -> None:
        if old is not None and old.config != config:
            old = None  # a reconfigured rebuild shares nothing
        self._hierarchy = hierarchy
        self._config = config
        self._old = old
        self._sig = _structure_signature(hierarchy.counts)
        self._same = (
            old is not None
            and old.structure_sig == self._sig
            and old.counts.shape == hierarchy.counts.shape
        )
        if self._same:
            _install_caches(hierarchy, old.arrays, hierarchy.counts)
        self._result: Optional[NonoverlappingMemo] = None
        self.dirty_groups = _dirty_groups(
            None if old is None else old.counts, hierarchy.counts
        )
        #: Internal nodes whose merge was re-run (the dirty set).
        self.solved = 0
        #: Internal nodes whose table/split came from the memo.
        self.reused = 0

    # -- sweep -------------------------------------------------------------
    def sweep(self, root: PNode, ctx: DPContext, budget: int):
        """Memoized bottom-up sweep; tables and splits bit-identical to
        :func:`~repro.algorithms.nonoverlapping._sweep`."""
        hierarchy = self._hierarchy
        if root.is_leaf:
            table = np.full(2, INF)
            table[1] = ctx.grperr_own(root)
            self._result = NonoverlappingMemo(
                config=self._config,
                counts=hierarchy.counts.copy(),
                structure_sig=self._sig,
                arrays=_tree_arrays(hierarchy),
                fps=subtree_fingerprints(hierarchy),
                by_index=[None] * len(hierarchy.nodes),
            )
            return table, {}
        if self._same:
            return self._sweep_same_structure(ctx, budget)
        return self._sweep_restructured(root, ctx, budget)

    def _sweep_same_structure(self, ctx: DPContext, budget: int):
        """Fast path: the pruned support set is unchanged, so old and
        new postorders coincide index for index.  The dirty set is one
        vectorized diff; only dirty internal nodes (ascending postorder
        is a valid bottom-up schedule) re-run their merges, reading
        clean child tables straight out of the previous memo."""
        from .nonoverlapping import _merge_node_naive

        hierarchy = self._hierarchy
        old = self._old
        ar = old.arrays
        nodes = hierarchy.nodes
        dirty = _dirty_vector(ar, old.counts, hierarchy.counts)
        internal = ar.left >= 0
        dirty_internal = np.nonzero(dirty & internal)[0]
        self.solved = int(dirty_internal.size)
        self.reused = int(np.count_nonzero(internal)) - self.solved

        by_index: List[Optional[_NOEntry]] = list(old.by_index)
        left_arr, right_arr = ar.left, ar.right
        new_tables: Dict[int, np.ndarray] = {}
        if ctx.batched:
            if old.own is not None:
                ctx.splice_own_errors(old.own, np.nonzero(dirty)[0])
            self._merge_dirty_batched(
                ctx, budget, ar, dirty, dirty_internal,
                by_index, new_tables,
            )
        else:
            for i in dirty_internal.tolist():
                li, ri = int(left_arr[i]), int(right_arr[i])
                lt = (
                    self._leaf_table(ctx, nodes[li]) if left_arr[li] < 0
                    else new_tables[li] if dirty[li]
                    else by_index[li].table
                )
                rt = (
                    self._leaf_table(ctx, nodes[ri]) if left_arr[ri] < 0
                    else new_tables[ri] if dirty[ri]
                    else by_index[ri].table
                )
                table, split = _merge_node_naive(
                    ctx, nodes[i], lt, rt, budget
                )
                new_tables[i] = table
                by_index[i] = _NOEntry(table=table, split=split)

        self._result = NonoverlappingMemo(
            config=self._config,
            counts=hierarchy.counts.copy(),
            structure_sig=self._sig,
            arrays=ar,
            fps=_refresh_fingerprints(hierarchy, old.fps, dirty, ar),
            by_index=by_index,
            own=ctx.own_errors() if ctx.batched else None,
        )
        root_index = len(nodes) - 1
        root_table = new_tables.get(root_index)
        if root_table is None:  # nothing dirty at all
            root_table = by_index[root_index].table
        return root_table, _LazySplits(by_index)

    def _merge_dirty_batched(
        self,
        ctx: DPContext,
        budget: int,
        ar: _TreeArrays,
        dirty: np.ndarray,
        dirty_internal: np.ndarray,
        by_index: List[Optional[_NOEntry]],
        new_tables: Dict[int, np.ndarray],
    ) -> None:
        """Phase-batched re-merge of the dirty internal nodes.

        The dirty set is processed level by level exactly like the full
        phase-batched sweep (same grouping by child-table shapes, same
        stacked kernels — every batch row is the per-node fast merge bit
        for bit); the only difference is that clean children contribute
        their memoized tables instead of freshly swept ones, which are
        identical arrays by the fingerprint argument.  Table lengths
        are structural, so the length recurrence runs over the full
        tree to type the clean tables without touching them.
        """
        from .kernels import _positive_merge_batch
        from .nonoverlapping import _shared_split_cache

        if dirty_internal.size == 0:
            return
        own = ctx.own_errors()
        maximum = ctx.metric.combine == "max"
        left_idx, right_idx, phase = ar.left, ar.right, ar.phase
        leaf_mask = left_idx < 0
        tlen = np.where(leaf_mask, 2, 0)
        for idx in _phase_slices(ar.order, ar.order_phase):
            tlen[idx] = np.minimum(
                budget, tlen[left_idx[idx]] + tlen[right_idx[idx]] - 2
            ) + 1
        _const_split = _shared_split_cache()
        dorder = dirty_internal[
            np.argsort(phase[dirty_internal], kind="stable")
        ]

        def _table(ci: int) -> np.ndarray:
            t = new_tables.get(ci)
            return t if t is not None else by_index[ci].table

        for idx_h in _phase_slices(dorder, phase[dorder]):
            li = left_idx[idx_h]
            ri = right_idx[idx_h]
            lleaf = leaf_mask[li]
            rleaf = leaf_mask[ri]

            both = lleaf & rleaf
            if both.any():
                g = idx_h[both]
                size = min(budget, 2) + 1
                block = np.empty((g.size, size))
                block[:, 0] = INF
                block[:, 1] = own[g]
                if size == 3:
                    lv = own[li[both]]
                    rv = own[ri[both]]
                    block[:, 2] = (
                        np.maximum(lv, rv) if maximum else lv + rv
                    )
                sp = _const_split("lr", size)
                for k, i in enumerate(g.tolist()):
                    new_tables[i] = block[k]
                    by_index[i] = _NOEntry(table=block[k], split=sp)

            one = lleaf ^ rleaf
            if one.any():
                g = idx_h[one]
                gl = li[one]
                gr = ri[one]
                r_is_leaf = rleaf[one]
                inner_idx = np.where(r_is_leaf, gl, gr)
                edge_idx = np.where(r_is_leaf, gr, gl)
                key = tlen[inner_idx] * 2 + r_is_leaf
                for u in np.unique(key).tolist():
                    sel = key == u
                    gi = g[sel]
                    ginner = inner_idx[sel]
                    inner_len = int(u // 2)
                    right_leaf = bool(u & 1)
                    size = min(budget, inner_len) + 1
                    K = gi.size
                    buf = np.empty((K, inner_len))
                    for k, ii in enumerate(ginner.tolist()):
                        buf[k] = _table(int(ii))
                    edge = own[edge_idx[sel]]
                    block = np.empty((K, size))
                    block[:, 0] = INF
                    block[:, 1] = own[gi]
                    if size > 2:
                        seg = buf[:, 1 : size - 1]
                        e = edge[:, None]
                        block[:, 2:] = (
                            np.maximum(seg, e) if maximum else seg + e
                        )
                    sp = _const_split(
                        "rl" if right_leaf else "lr", size
                    )
                    for k, i in enumerate(gi.tolist()):
                        new_tables[i] = block[k]
                        by_index[i] = _NOEntry(table=block[k], split=sp)

            both_int = ~(lleaf | rleaf)
            if both_int.any():
                g = idx_h[both_int]
                gl = li[both_int]
                gr = ri[both_int]
                key = tlen[gl] * (2 * budget + 4) + tlen[gr]
                for u in np.unique(key).tolist():
                    sel = key == u
                    gi = g[sel]
                    m = int(u // (2 * budget + 4))
                    nn = int(u % (2 * budget + 4))
                    size = min(budget, m + nn - 2) + 1
                    K = gi.size
                    bl = np.empty((K, m - 1))
                    br = np.empty((K, nn - 1))
                    for k, ii in enumerate(gl[sel].tolist()):
                        bl[k] = _table(int(ii))[1:]
                    for k, ii in enumerate(gr[sel].tolist()):
                        br[k] = _table(int(ii))[1:]
                    block = np.empty((K, size))
                    block[:, 0] = INF
                    block[:, 1] = own[gi]
                    if size > 2:
                        vals, choice = _positive_merge_batch(
                            bl, br, size - 2, maximum, want_choice=True
                        )
                        block[:, 2:] = vals
                    spblock = np.empty((K, size), dtype=np.int32)
                    spblock[:, 0] = -1
                    spblock[:, 1] = -1
                    if size > 2:
                        spblock[:, 2:] = choice
                    for k, i in enumerate(gi.tolist()):
                        new_tables[i] = block[k]
                        by_index[i] = _NOEntry(
                            table=block[k], split=spblock[k]
                        )

    @staticmethod
    def _leaf_table(ctx: DPContext, p: PNode) -> np.ndarray:
        table = np.full(2, INF)
        table[1] = ctx.grperr_own(p)
        return table

    def _sweep_restructured(self, root: PNode, ctx: DPContext, budget: int):
        """Fallback when the pruned support set changed (or there is no
        previous memo): walk the new tree, splicing any subtree whose
        content fingerprint the old memo knows and merging the rest."""
        from .nonoverlapping import (
            _merge_node_fast,
            _merge_node_naive,
            _shared_split_cache,
        )

        hierarchy = self._hierarchy
        fps = subtree_fingerprints(hierarchy)
        old = self._old
        fpmap = old.fp_map() if old is not None else {}
        by_index: List[Optional[_NOEntry]] = [None] * len(hierarchy.nodes)
        batched = ctx.batched
        maximum = ctx.metric.combine == "max"
        own = ctx.own_errors() if batched else None
        const_split = _shared_split_cache()
        tables: Dict[int, np.ndarray] = {}
        stack = [(root, False)]
        while stack:
            p, expanded = stack.pop()
            if not expanded:
                if p.is_leaf:
                    if not batched:
                        tables[p.index] = self._leaf_table(ctx, p)
                    continue
                oi = fpmap.get(fps[p.index], -1) if fpmap else -1
                if oi >= 0:
                    self._splice(p, oi, tables, by_index)
                    continue
                stack.append((p, True))
                stack.append((p.right, False))
                stack.append((p.left, False))
                continue
            left, right = p.left, p.right
            if batched:
                lt = tables.pop(left.index) if not left.is_leaf else None
                rt = tables.pop(right.index) if not right.is_leaf else None
                table, split = _merge_node_fast(
                    own[p.index], lt, rt,
                    own[left.index], own[right.index],
                    budget, maximum, True, const_split,
                )
            else:
                table, split = _merge_node_naive(
                    ctx, p,
                    tables.pop(left.index), tables.pop(right.index),
                    budget,
                )
            tables[p.index] = table
            by_index[p.index] = _NOEntry(table=table, split=split)
            self.solved += 1
        self._result = NonoverlappingMemo(
            config=self._config,
            counts=hierarchy.counts.copy(),
            structure_sig=self._sig,
            arrays=_tree_arrays(hierarchy),
            fps=fps,
            by_index=by_index,
            own=own,
        )
        return tables[root.index], _LazySplits(by_index)

    def _splice(
        self,
        p: PNode,
        old_index: int,
        tables: Dict[int, np.ndarray],
        by_index: List[Optional[_NOEntry]],
    ) -> None:
        """Install a clean subtree's memoized entries without re-running
        any merge.  Equal fingerprints imply equal pruned shape, so the
        new subtree and the old one walk in lockstep; only the subtree
        *root's* table is published (parents consume nothing deeper),
        while entries land at every internal descendant so the
        reconstruction walk finds its splits."""
        old = self._old
        oar = old.arrays
        obi = old.by_index
        tables[p.index] = obi[old_index].table
        stack = [(p, old_index)]
        while stack:
            q, oj = stack.pop()
            by_index[q.index] = obi[oj]
            self.reused += 1
            lo, ro = int(oar.left[oj]), int(oar.right[oj])
            if oar.left[lo] >= 0:
                stack.append((q.left, lo))
            if oar.left[ro] >= 0:
                stack.append((q.right, ro))

    # -- lifecycle ---------------------------------------------------------
    def finish(self) -> NonoverlappingMemo:
        return self._result

    def stats(self) -> Dict[str, float]:
        total = self.solved + self.reused
        return {
            "dirty_subtrees": float(self.solved),
            "reused_subtrees": float(self.reused),
            "reused_fraction": (self.reused / total) if total else 0.0,
            "dirty_groups": float(self.dirty_groups),
        }


# ---------------------------------------------------------------------------
# Overlapping: per-node bucket case + conditioned row blocks
# ---------------------------------------------------------------------------
@dataclass
class _OVNodeEntry:
    """One internal (non-collapse) node's solve output.

    ``e2``/``flags_block``/``splits_block`` are the batched-mode
    conditioned-row blocks (row ``d`` is conditioned on the ancestor at
    depth ``d``); naive-mode entries keep them ``None`` and reuse only
    the ancestor-independent bucket case.
    """

    e_b: np.ndarray
    split_b: np.ndarray
    bucket_flag: np.ndarray
    sparse_at: Optional[int]
    e2: Optional[np.ndarray]
    flags_block: Optional[np.ndarray]
    splits_block: Optional[np.ndarray]


@dataclass
class _OVArena:
    """Contiguous DP-state arenas for one batched overlapping build.

    Node ``i``'s conditioned-row block (row ``d`` conditioned on the
    ancestor at depth ``d``) lives at arena rows
    ``row_start[i] : row_start[i] + depth[i]``, width ``blk_w[i]``;
    its ancestor-independent bucket case occupies ``eb[i, :size_b[i]]``
    (the tail is ``INF`` so stacked bucket-case overlays can compare
    full-width without a per-node length clamp — an ``INF`` candidate
    never wins a strict ``<``).  Widths, row offsets and the
    base/internal ``kind`` are all structural, so two same-structure
    builds address the arena identically — which is what lets a rebuild
    patch only the dirty-ancestor row prefix of each clean node *in
    place* with whole-array gathers and scatters instead of per-node
    Python.  In-place patching consumes the memo: after a rebuild the
    arena reflects the new counts, so a memo must only ever seed the
    *next* rebuild (replaying the identical transition is idempotent —
    every rewritten value is bit-identical — which is what benchmark
    repetition relies on).
    """

    row_start: np.ndarray  # (n + 1,) exclusive prefix sum of depths
    e2: np.ndarray         # (R, W) conditioned-row tables
    flags: np.ndarray      # (R, W) int8 reconstruction flags
    splits: np.ndarray     # (R, W) int32 non-bucket split choices
    eb: np.ndarray         # (n, W) bucket-case tables, INF-padded
    split_b: np.ndarray    # (n, W) int32 bucket-case split choices
    bflag: np.ndarray      # (n, W) int8 bucket/sparse flags
    sparse_at: np.ndarray  # (n,) int64 sparse-leaf node id, -1 = none
    size_b: np.ndarray     # (n,) int64 bucket-case table length
    blk_w: np.ndarray      # (n,) int64 conditioned-block width
    kind: np.ndarray       # (n,) int8: 0 unstored, 1 base, 2 internal


def _alloc_arena(depth: np.ndarray, width: int) -> _OVArena:
    n = depth.shape[0]
    row_start = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(depth, out=row_start[1:])
    rows = int(row_start[n])
    return _OVArena(
        row_start=row_start,
        e2=np.empty((rows, width)),
        flags=np.zeros((rows, width), dtype=np.int8),
        splits=np.full((rows, width), -1, dtype=np.int32),
        eb=np.full((n, width), INF),
        split_b=np.full((n, width), -1, dtype=np.int32),
        bflag=np.zeros((n, width), dtype=np.int8),
        sparse_at=np.full(n, -1, dtype=np.int64),
        size_b=np.zeros(n, dtype=np.int64),
        blk_w=np.zeros(n, dtype=np.int64),
        kind=np.zeros(n, dtype=np.int8),
    )


@dataclass
class OverlappingMemo:
    """One build's DP state, indexed by that build's postorder, plus
    the counts/support signature identifying it.  Batched builds store
    the contiguous :class:`_OVArena`; the naive reference mode keeps
    per-node entries (bucket case only).  The kernel mode is part of
    ``config``, so a memo is only ever consulted by its own mode."""

    config: Tuple
    counts: np.ndarray
    structure_sig: bytes
    arrays: _TreeArrays
    entries: Optional[List[Optional[_OVNodeEntry]]] = None
    arena: Optional[_OVArena] = None


class OverlappingSession:
    """One incremental overlapping solve.

    On a batched same-structure rebuild the DP never recurses into a
    clean subtree: a vectorized prepass re-conditions the
    dirty-ancestor row prefix of *every* clean node directly in the
    memo arena (rows conditioned on clean ancestors — always the
    suffix, because dirtiness is monotone up any ancestor chain — stay
    valid verbatim), and the recursion then only visits dirty nodes,
    adopting each maximal clean subtree as one arena view.  The naive
    reference mode keeps the per-node entry protocol and reuses only
    the ancestor-independent bucket case.  A support-set change starts
    a cold session: every node is dirty and a fresh memo is recorded
    for the next rebuild.
    """

    algorithm = "overlapping"

    def __init__(
        self,
        hierarchy: PrunedHierarchy,
        config: Tuple,
        old: Optional[OverlappingMemo],
    ) -> None:
        if old is not None and old.config != config:
            old = None
        counts = hierarchy.counts
        self._config = config
        self._sig = _structure_signature(counts)
        #: Whether this session records naive-mode entries instead of
        #: the batched arena (index 3 of the config key is the kernel
        #: mode — see :func:`memo_config_key`).
        self.naive = config[3] == "naive"
        self.dirty_groups = _dirty_groups(
            None if old is None else old.counts, counts
        )
        if (
            old is not None
            and old.structure_sig == self._sig
            and old.counts.shape == counts.shape
            and (old.entries is not None) == self.naive
            and (self.naive or old.arena is not None)
        ):
            self._arrays = old.arrays
            _install_caches(hierarchy, old.arrays, counts)
            #: Per-node dirty flags; the DP also folds these into its
            #: running dirty-ancestor counts.
            self.dirty = _dirty_vector(old.arrays, old.counts, counts)
        else:
            self._arrays = _tree_arrays(hierarchy)
            self.dirty = np.ones(len(hierarchy.nodes), dtype=bool)
            old = None
        #: Whether the old memo survived with an identical pruned
        #: support set — the precondition for the skip-clean fast path.
        self.same_structure = old is not None
        self._old = old
        self._counts = counts
        self.arena: Optional[_OVArena] = (
            old.arena if old is not None and not self.naive else None
        )
        self._entries: Optional[List[Optional[_OVNodeEntry]]] = (
            [None] * len(hierarchy.nodes) if self.naive else None
        )
        self.solved = 0  # internal bucket-case merges re-run
        self.reused = 0  # internal nodes reusing their memo entry
        self.rows_solved = 0
        self.rows_reused = 0

    @property
    def arrays(self) -> _TreeArrays:
        return self._arrays

    # -- arena protocol (batched modes) ------------------------------------
    def ensure_arena(self, width: int) -> _OVArena:
        """The carried-over arena, or a fresh one sized ``width`` (=
        ``max subtree cap + 1``, a structural constant for a fixed
        configuration) on a cold session."""
        if self.arena is None:
            self.arena = _alloc_arena(self._arrays.depth, width)
        return self.arena

    def store_base(
        self,
        index: int,
        depth: int,
        e_b: np.ndarray,
        bucket_flag: np.ndarray,
        sparse_at: Optional[int],
        e2: np.ndarray,
        flags2: np.ndarray,
    ) -> None:
        """Record a visited base node (leaf or sparse collapse).  Every
        node the recursion visits is dirty (clean subtrees are adopted
        whole), so its dirty-ancestor count equals its depth and ``e2``
        always holds the full ``depth`` rows."""
        a = self.arena
        start = int(a.row_start[index])
        if depth:
            a.e2[start : start + depth, :2] = e2
            a.flags[start : start + depth, :2] = flags2
        a.eb[index, :2] = e_b
        a.bflag[index, :2] = bucket_flag
        a.sparse_at[index] = -1 if sparse_at is None else sparse_at
        a.size_b[index] = 2
        a.blk_w[index] = 2
        a.kind[index] = 1

    def store_block(
        self,
        index: int,
        depth: int,
        e_b: np.ndarray,
        split_b: np.ndarray,
        bucket_flag: np.ndarray,
        sparse_at: Optional[int],
        e2: np.ndarray,
        flags2: np.ndarray,
        split2: np.ndarray,
    ) -> None:
        """Record a visited internal node's full solve output."""
        a = self.arena
        start = int(a.row_start[index])
        width = e2.shape[1]
        if depth:
            a.e2[start : start + depth, :width] = e2
            a.flags[start : start + depth, :width] = flags2
            a.splits[start : start + depth, : split2.shape[1]] = split2
        size_b = e_b.shape[0]
        a.eb[index, :size_b] = e_b
        a.eb[index, size_b:] = INF
        a.split_b[index, : split_b.shape[0]] = split_b
        a.bflag[index, :size_b] = bucket_flag
        a.sparse_at[index] = -1 if sparse_at is None else sparse_at
        a.size_b[index] = size_b
        a.blk_w[index] = width
        a.kind[index] = 2

    def note_clean_bulk(
        self, nodes: int, rows_solved: int, rows_reused: int
    ) -> None:
        """Fold the sweep totals into the reuse stats: ``nodes``
        clean internal nodes adopted, with ``rows_solved`` conditioned
        rows re-merged and ``rows_reused`` carried verbatim."""
        self.reused += int(nodes)
        self.rows_solved += int(rows_solved)
        self.rows_reused += int(rows_reused)

    def note_dirty_bulk(self, nodes: int, rows_solved: int) -> None:
        """Fold the sweep's dirty-side totals into the stats:
        ``nodes`` internal bucket cases re-merged, ``rows_solved``
        conditioned rows re-merged (one per dirty ancestor)."""
        self.solved += int(nodes)
        self.rows_solved += int(rows_solved)

    # -- per-node protocol (naive mode; stats for both) --------------------
    def lookup(self, p: PNode) -> Optional[_OVNodeEntry]:
        """The node's previous entry when its subtree is clean (same
        structure, unchanged counts below); ``None`` forces a fresh
        solve.  Counts the subtree-level reuse stats.  Batched sessions
        only ever reach this with dirty nodes — clean subtrees are
        adopted before recursion."""
        if (
            self._old is None
            or self.dirty[p.index]
            or self._old.entries is None
        ):
            self.solved += 1
            return None
        entry = self._old.entries[p.index]
        if entry is None:  # defensive: unknown node class drift
            self.solved += 1
            return None
        self.reused += 1
        return entry

    def store(self, p: PNode, entry: _OVNodeEntry) -> None:
        self._entries[p.index] = entry

    def note_rows(self, solved: int, reused: int) -> None:
        self.rows_solved += solved
        self.rows_reused += reused

    # -- lifecycle ---------------------------------------------------------
    def finish(self) -> OverlappingMemo:
        return OverlappingMemo(
            config=self._config,
            counts=self._counts.copy(),
            structure_sig=self._sig,
            arrays=self._arrays,
            entries=self._entries,
            arena=self.arena,
        )

    def stats(self) -> Dict[str, float]:
        total = self.solved + self.reused
        rows_total = self.rows_solved + self.rows_reused
        return {
            "dirty_subtrees": float(self.solved),
            "reused_subtrees": float(self.reused),
            "reused_fraction": (self.reused / total) if total else 0.0,
            "dirty_groups": float(self.dirty_groups),
            "rows_solved": float(self.rows_solved),
            "rows_reused": float(self.rows_reused),
            "rows_reused_fraction": (
                (self.rows_reused / rows_total) if rows_total else 0.0
            ),
        }


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------
def new_session(
    algorithm: str,
    hierarchy: PrunedHierarchy,
    metric: PenaltyMetric,
    budget: int,
    memo,
    **options,
):
    """Create the memo session for one rebuild.

    ``memo`` is the previous build's memo (or ``None`` on the first
    build).  A memo built under a different configuration — or a
    different kernel mode — contributes nothing; the session then
    behaves as a cold first build that still records a fresh memo.
    """
    if not supports_incremental(algorithm, options):
        raise ValueError(
            f"algorithm {algorithm!r} (options {options!r}) has no "
            f"incremental rebuild path"
        )
    config = memo_config_key(algorithm, metric, budget, options)
    if algorithm == "nonoverlapping":
        return NonoverlappingSession(hierarchy, config, memo)
    return OverlappingSession(hierarchy, config, memo)
