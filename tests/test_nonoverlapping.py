"""Optimality and consistency tests for the nonoverlapping DP
(paper Section 3.2.2)."""

import numpy as np
import pytest

from repro import (
    PrunedHierarchy,
    build_nonoverlapping,
    evaluate_function,
    get_metric,
)
from repro.algorithms import exhaustive_nonoverlapping

from helpers import ALL_METRICS, random_instance


@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize("mname", ALL_METRICS)
def test_matches_exhaustive_oracle(seed, mname):
    """The DP must equal brute-force search over every covering cut of
    the full virtual hierarchy, for every metric."""
    _dom, table, counts = random_instance(seed)
    metric = get_metric(mname)
    h = PrunedHierarchy(table, counts)
    budget = 1 + seed % 4
    res = build_nonoverlapping(h, metric, budget)
    oracle, _ = exhaustive_nonoverlapping(table, counts, metric, budget)
    assert res.error_at(budget) == pytest.approx(oracle, abs=1e-9)


@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize("mname", ALL_METRICS)
def test_predicted_error_is_delivered(seed, mname):
    """The DP's claimed error must equal the error measured through the
    full histogram/reconstruction pipeline."""
    _dom, table, counts = random_instance(seed + 100)
    metric = get_metric(mname)
    h = PrunedHierarchy(table, counts)
    budget = 1 + seed % 5
    res = build_nonoverlapping(h, metric, budget)
    predicted = res.error_at(budget)
    if not np.isfinite(predicted):
        return
    fn = res.function_at(budget)
    measured = evaluate_function(table, counts, fn, metric)
    assert measured == pytest.approx(predicted, abs=1e-9)


@pytest.mark.parametrize("seed", range(8))
def test_curve_monotone_nonincreasing(seed):
    _dom, table, counts = random_instance(seed, height_range=(3, 6))
    metric = get_metric("rms")
    h = PrunedHierarchy(table, counts)
    res = build_nonoverlapping(h, metric, 12)
    finite = res.curve[np.isfinite(res.curve)]
    assert np.all(np.diff(finite) <= 1e-12)


@pytest.mark.parametrize("seed", range(8))
def test_full_budget_reaches_zero_error(seed):
    """With one bucket per pruned leaf the cut resolves every nonzero
    group exactly and every empty region to zero."""
    _dom, table, counts = random_instance(seed, height_range=(2, 5))
    metric = get_metric("average")
    h = PrunedHierarchy(table, counts)
    budget = h.max_useful_buckets()
    res = build_nonoverlapping(h, metric, budget)
    assert res.error_at(budget) == pytest.approx(0.0, abs=1e-12)


def test_budget_one_is_single_root_bucket(small_hierarchy):
    metric = get_metric("rms")
    res = build_nonoverlapping(small_hierarchy, metric, 1)
    fn = res.function_at(1)
    assert fn.num_buckets == 1
    assert fn.buckets[0].node == small_hierarchy.root.node


def test_function_is_valid_cut(small_hierarchy):
    metric = get_metric("rms")
    res = build_nonoverlapping(small_hierarchy, metric, 6)
    fn = res.function_at(6)  # construction validates disjointness
    # all groups covered
    table = small_hierarchy.table
    covered = np.zeros(len(table), dtype=bool)
    for b in fn.buckets:
        covered[table.group_indices_below(b.node)] = True
    assert covered.all()


def test_bad_budget_rejected(small_hierarchy):
    with pytest.raises(ValueError):
        build_nonoverlapping(small_hierarchy, get_metric("rms"), 0)


def test_all_zero_window(small_instance):
    _dom, table, _counts = small_instance
    h = PrunedHierarchy(table, np.zeros(len(table)))
    res = build_nonoverlapping(h, get_metric("rms"), 3)
    assert res.error_at(3) == 0.0
    fn = res.function_at(3)
    assert fn.num_buckets == 1


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("mname", ["rms", "max_relative"])
def test_low_memory_mode_equivalent(seed, mname):
    """The Section 4.4 multi-pass mode must produce the same curve and
    an equally-good bucket set as the split-retaining mode."""
    _dom, table, counts = random_instance(seed + 300)
    metric = get_metric(mname)
    h = PrunedHierarchy(table, counts)
    budget = 2 + seed % 4
    fast = build_nonoverlapping(h, metric, budget)
    lean = build_nonoverlapping(h, metric, budget, low_memory=True)
    assert np.allclose(fast.curve[1:], lean.curve[1:], equal_nan=True)
    err_fast = evaluate_function(
        table, counts, fast.function_at(budget), metric
    )
    err_lean = evaluate_function(
        table, counts, lean.function_at(budget), metric
    )
    assert err_lean == pytest.approx(err_fast, abs=1e-9)
    assert err_lean == pytest.approx(lean.error_at(budget), abs=1e-9)
