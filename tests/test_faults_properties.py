"""Property-based tests for the fault-injection layer.

The contract under test, for random seeded traces and fault configs:

(a) a zero-probability :class:`FaultModel` is byte- and
    report-identical to a run with no fault model at all;
(b) duplicate-only faults never change decoded estimates (the Control
    Center dedups by ``(monitor, window_index, function_version)``);
(c) drop-only faults keep every per-window error finite and report
    ``monitors_reporting`` exactly.

Each property is exercised for both the count(*) pipeline and the
weighted ``sum(value)`` pipeline (traces carrying a per-tuple value
column) — bucket aggregation, merging, decode and ground truth must all
honour the weights under faults, not just on the clean path.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import UIDDomain, get_metric
from repro.data import TrafficModel, generate_subnet_table
from repro.data.traffic import generate_timestamped_trace
from repro.streams import FaultModel, MonitoringSystem, Trace


@pytest.fixture(scope="module")
def workload():
    dom = UIDDomain(8)
    table = generate_subnet_table(dom, seed=11)
    ts, uids = generate_timestamped_trace(
        table, 4000, duration=24.0, seed=12,
        model=TrafficModel(active_fraction=0.2, zipf_exponent=1.1),
    )
    trace = Trace(ts, uids)
    return table, trace.slice_time(0, 12), trace.slice_time(12, 24)


def _system(table, **kwargs):
    return MonitoringSystem(
        table, get_metric("rms"), num_monitors=3,
        algorithm="lpm_greedy", budget=25, **kwargs,
    )


def _run(table, history, live, faults):
    system = _system(table)
    system.train(history)
    report = system.run(live, window_width=3.0, faults=faults)
    return system, report


class TestZeroFaultIdentity:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_report_and_bytes_identical(self, workload, seed):
        table, history, live = workload
        _clean_sys, clean = _run(table, history, live, faults=None)
        faulty_sys, faulty = _run(
            table, history, live, faults=FaultModel(seed=seed)
        )
        assert faulty.windows == clean.windows
        assert faulty.upstream_bytes == clean.upstream_bytes
        assert faulty.function_bytes == clean.function_bytes
        assert faulty.raw_bytes == clean.raw_bytes
        assert faulty.monitor_crashes == 0
        assert faulty.expired_messages == 0
        assert faulty.mean_error == clean.mean_error
        assert len(faulty_sys.channel.messages) == len(
            _clean_sys.channel.messages
        )

    def test_null_model_is_null(self):
        assert FaultModel(seed=3).is_null
        assert not FaultModel(drop=0.1).is_null
        assert not FaultModel(install_drop=0.5).is_null


class TestDuplicateOnly:
    @settings(max_examples=10, deadline=None)
    @given(
        dup=st.floats(min_value=0.05, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_estimates_unchanged_and_dupes_accounted(
        self, workload, dup, seed
    ):
        table, history, live = workload
        _clean_sys, clean = _run(table, history, live, faults=None)
        faulty_sys, faulty = _run(
            table, history, live, faults=FaultModel(duplicate=dup, seed=seed)
        )
        # Dedup keeps the first copy, so merge order — and therefore
        # every float in the decode — is untouched.
        assert [w.error for w in faulty.windows] == [
            w.error for w in clean.windows
        ]
        assert [w.monitors_reporting for w in faulty.windows] == [
            w.monitors_reporting for w in clean.windows
        ]
        # Every duplicate wire copy was charged and then dropped by
        # decode, one for one.
        extra = len(faulty_sys.channel.messages) - len(
            _clean_sys.channel.messages
        )
        assert sum(w.duplicates_dropped for w in faulty.windows) == extra
        assert faulty.upstream_bytes >= clean.upstream_bytes
        if extra:
            assert faulty.upstream_bytes > clean.upstream_bytes


class TestDropOnly:
    @settings(max_examples=10, deadline=None)
    @given(
        drop=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_errors_finite_and_reporting_correct(self, workload, drop, seed):
        table, history, live = workload
        system, report = _run(
            table, history, live, faults=FaultModel(drop=drop, seed=seed)
        )
        assert report.windows  # total loss is reported, never skipped
        for w in report.windows:
            assert np.isfinite(w.error)
            assert 0 <= w.monitors_reporting <= len(system.monitors)
        # monitors_reporting must match what actually survived the wire.
        survivors = {}
        for delivery in system.channel.delivered:
            survivors.setdefault(delivery.message.window_index, set()).add(
                delivery.message.monitor
            )
        for w in report.windows:
            assert w.monitors_reporting == len(
                survivors.get(w.window_index, set())
            )


@pytest.fixture(scope="module")
def weighted_workload():
    dom = UIDDomain(8)
    table = generate_subnet_table(dom, seed=21)
    ts, uids = generate_timestamped_trace(
        table, 4000, duration=24.0, seed=22,
        model=TrafficModel(active_fraction=0.2, zipf_exponent=1.1),
    )
    values = np.random.default_rng(23).lognormal(
        mean=2.0, sigma=1.0, size=uids.size
    )
    trace = Trace(ts, uids, values)
    return table, trace.slice_time(0, 12), trace.slice_time(12, 24)


class TestWeightedValuesUnderFaults:
    """The satellite contract: sum(value) aggregation end-to-end —
    Monitor weighting, merge, decode and weighted ground truth — holds
    under the same fault properties as count(*)."""

    def test_weights_reach_histograms(self, weighted_workload):
        table, history, live = weighted_workload
        system, report = _run(table, history, live, faults=None)
        # Histogram totals are sums of tuple values, not tuple counts —
        # for a lognormal value column the two cannot coincide.
        totals = sum(m.histogram.total for m in system.channel.messages)
        tuples = sum(w.tuples for w in report.windows)
        assert totals == pytest.approx(float(np.sum(live.values)))
        assert abs(totals - tuples) > 1.0

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_zero_fault_identity(self, weighted_workload, seed):
        table, history, live = weighted_workload
        _clean_sys, clean = _run(table, history, live, faults=None)
        _faulty_sys, faulty = _run(
            table, history, live, faults=FaultModel(seed=seed)
        )
        assert faulty.windows == clean.windows
        assert faulty.upstream_bytes == clean.upstream_bytes

    @settings(max_examples=6, deadline=None)
    @given(
        dup=st.floats(min_value=0.05, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_duplicates_never_double_weights(
        self, weighted_workload, dup, seed
    ):
        table, history, live = weighted_workload
        _clean_sys, clean = _run(table, history, live, faults=None)
        _faulty_sys, faulty = _run(
            table, history, live, faults=FaultModel(duplicate=dup, seed=seed)
        )
        assert [w.error for w in faulty.windows] == [
            w.error for w in clean.windows
        ]

    @settings(max_examples=6, deadline=None)
    @given(
        drop=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_drops_keep_weighted_errors_finite(
        self, weighted_workload, drop, seed
    ):
        table, history, live = weighted_workload
        system, report = _run(
            table, history, live, faults=FaultModel(drop=drop, seed=seed)
        )
        assert report.windows
        for w in report.windows:
            assert np.isfinite(w.error)
            assert 0 <= w.monitors_reporting <= len(system.monitors)


class TestFaultModelUnit:
    def test_parse_round_trip(self):
        fm = FaultModel.parse("drop=0.1, dup=0.05, max_delay=3, seed=7")
        assert fm.drop == 0.1
        assert fm.duplicate == 0.05
        assert fm.max_delay_windows == 3
        assert fm.seed == 7

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown fault spec key"):
            FaultModel.parse("dorp=0.1")

    def test_parse_rejects_bare_token(self):
        with pytest.raises(ValueError, match="key=value"):
            FaultModel.parse("drop")

    def test_probability_ranges_validated(self):
        with pytest.raises(ValueError):
            FaultModel(drop=1.5)
        with pytest.raises(ValueError):
            FaultModel(install_drop=-0.1)
        with pytest.raises(ValueError):
            FaultModel(max_delay_windows=0)

    def test_plans_deterministic_after_reset(self):
        from repro.streams.monitor import HistogramMessage
        from repro import Histogram

        msg = HistogramMessage("m0", 0, Histogram({1: 2.0}), 0)
        fm = FaultModel(drop=0.4, duplicate=0.4, delay=0.3, seed=99)
        first = [fm.plan_histogram(msg) for _ in range(50)]
        fm.reset()
        second = [fm.plan_histogram(msg) for _ in range(50)]
        assert [
            (t, [(d.delay, d.reorder) for d in ds]) for t, ds in first
        ] == [(t, [(d.delay, d.reorder) for d in ds]) for t, ds in second]
