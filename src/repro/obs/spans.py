"""Nested wall-clock tracing spans.

A span marks one phase of work::

    with span("dp.nonoverlapping", budget=b) as sp:
        ...
        sp.annotate(cells=n_cells)

On exit the span

* appends a :class:`~repro.obs.registry.SpanRecord` (name, parent span
  name, start offset relative to the registry epoch, duration, payload)
  to the current registry, and
* observes its duration into the timer family ``<name>.duration`` with
  the payload's *string-valued* entries as labels dropped — timers are
  labeled only by span name to keep cardinality bounded; rich payloads
  live on the span record itself.

Spans nest per thread: the innermost open span is the parent of any
span opened beneath it.  When the current registry is the no-op
:class:`~repro.obs.registry.NullRegistry`, ``span()`` yields a shared
inert object without reading the clock — instrumented code needs no
``if enabled`` guards of its own.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from .registry import SpanRecord, get_registry

__all__ = ["span", "Span", "current_span"]

_stacks = threading.local()


def _stack():
    stack = getattr(_stacks, "stack", None)
    if stack is None:
        stack = []
        _stacks.stack = stack
    return stack


class Span:
    """An open tracing span; annotate payload values as they become
    known."""

    __slots__ = ("name", "parent", "payload", "start", "duration")

    def __init__(
        self, name: str, parent: Optional[str], payload: Dict[str, object]
    ):
        self.name = name
        self.parent = parent
        self.payload = payload
        self.start = 0.0
        self.duration = 0.0

    def annotate(self, **payload) -> "Span":
        self.payload.update(payload)
        return self


class _NullSpan:
    """The inert span handed out when instrumentation is disabled."""

    __slots__ = ()
    name = None
    parent = None
    payload: Dict[str, object] = {}
    duration = 0.0

    def annotate(self, **payload) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


def current_span():
    """The innermost open span on this thread (``None`` outside any)."""
    stack = _stack()
    return stack[-1] if stack else None


@contextmanager
def span(name: str, **payload) -> Iterator[object]:
    """Record one nested wall-clock phase into the current registry."""
    registry = get_registry()
    if not registry.enabled:
        yield _NULL_SPAN
        return
    stack = _stack()
    parent = stack[-1].name if stack else None
    sp = Span(name, parent, dict(payload))
    stack.append(sp)
    start = time.perf_counter()
    sp.start = start - registry.epoch
    try:
        yield sp
    finally:
        sp.duration = time.perf_counter() - start
        stack.pop()
        registry.record_span(
            SpanRecord(
                name=sp.name,
                parent=sp.parent,
                start=sp.start,
                duration=sp.duration,
                payload=sp.payload,
                thread=threading.current_thread().name,
            )
        )
        registry.timer(f"{name}.duration").observe(sp.duration)
