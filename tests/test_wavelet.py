"""Tests for the Haar-wavelet synopsis baseline."""

import numpy as np
import pytest

from repro import GroupTable, UIDDomain, get_metric
from repro.baselines import build_wavelet
from repro.baselines.wavelet import haar_decompose, haar_reconstruct


class TestHaarTransform:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        for n in (1, 2, 4, 8, 64):
            v = rng.random(n) * 100
            assert np.allclose(haar_reconstruct(haar_decompose(v)), v)

    def test_known_values(self):
        c = haar_decompose(np.array([4.0, 2.0, 5.0, 5.0]))
        assert c[0] == 4.0          # overall average
        assert c[1] == pytest.approx(-1.0)   # top detail: (3 - 5) / 2
        assert c[2] == pytest.approx(1.0)    # left pair detail
        assert c[3] == pytest.approx(0.0)    # right pair detail

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            haar_decompose(np.ones(3))

    def test_constant_vector_one_coefficient(self):
        c = haar_decompose(np.full(8, 7.0))
        assert c[0] == 7.0
        assert np.allclose(c[1:], 0.0)


@pytest.fixture
def setup():
    dom = UIDDomain(4)
    table = GroupTable(dom, [dom.node(4, p) for p in range(16)])
    rng = np.random.default_rng(3)
    counts = rng.integers(0, 50, 16).astype(float)
    counts[rng.random(16) < 0.4] = 0
    return table, counts


class TestWaveletHistogram:
    def test_full_budget_exact(self, setup):
        table, counts = setup
        w = build_wavelet(table, counts, 16)
        assert np.allclose(w.estimates(16), counts)
        assert w.error(get_metric("rms"), 16) == pytest.approx(0.0)

    def test_single_coefficient_is_mean(self, setup):
        table, counts = setup
        w = build_wavelet(table, counts, 4)
        est = w.estimates(1)
        assert np.allclose(est, counts.mean())

    def test_error_curve_monotone(self, setup):
        table, counts = setup
        w = build_wavelet(table, counts, 16)
        curve = w.error_curve(get_metric("rms"))
        # L2 thresholding is RMS-optimal per retained set, and the
        # retained sets are nested, so the curve is nonincreasing.
        assert np.all(np.diff(curve[1:]) <= 1e-9)

    def test_rms_thresholding_beats_random_choice(self, setup):
        table, counts = setup
        w = build_wavelet(table, counts, 16)
        metric = get_metric("rms")
        rng = np.random.default_rng(9)
        b = 4
        best = w.error(metric, b)
        coeffs = haar_decompose(
            np.concatenate([counts, np.zeros(0)])
        )
        for _ in range(10):
            idx = rng.choice(16, size=b, replace=False)
            sparse = np.zeros(16)
            sparse[idx] = coeffs[idx]
            est = haar_reconstruct(sparse)
            assert best <= metric.evaluate(counts, est) + 1e-9

    def test_non_power_of_two_groups_padded(self):
        dom = UIDDomain(4)
        table = GroupTable(
            dom, [dom.node(4, p) for p in range(10)] + [dom.node(2, 3)]
        )
        counts = np.arange(11, dtype=float)
        w = build_wavelet(table, counts, 16)
        assert np.allclose(w.estimates(16), counts)

    def test_size_accounting(self, setup):
        table, counts = setup
        w = build_wavelet(table, counts, 8)
        assert w.size_bits(4) < w.size_bits(8)

    def test_bad_budget_rejected(self, setup):
        table, counts = setup
        with pytest.raises(ValueError):
            build_wavelet(table, counts, 0)
